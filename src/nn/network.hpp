#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace rp::nn {

/// Describes the inference task a network is built for. All networks in the
/// repository consume fixed-size [C, H, W] images; classification nets emit
/// [N, num_classes] logits, segmentation nets [N, num_classes, H, W].
struct TaskSpec {
  std::string name = "synth_cifar";
  int64_t in_c = 3;
  int64_t in_h = 16;
  int64_t in_w = 16;
  int num_classes = 10;
  bool segmentation = false;
};

/// A complete model: the module graph plus the metadata needed to train,
/// prune, serialize, and clone it. The clone path goes through the
/// architecture registry (`build_network`), so a Network is always
/// reconstructible from (arch, task, state).
class Network {
 public:
  Network(std::string arch, TaskSpec task, ModulePtr root);

  const std::string& arch() const { return arch_; }
  const TaskSpec& task() const { return task_; }

  /// Forward pass; `train` toggles batch-norm batch statistics.
  Tensor forward(const Tensor& x, bool train = false) { return root_->forward(x, train); }
  Tensor backward(const Tensor& dy) { return root_->backward(dy); }

  /// Stable parameter list (collected once at construction).
  const std::vector<Parameter*>& params() { return params_; }
  /// Prunable-layer descriptions, in forward order.
  const std::vector<PrunableSpec>& prunable() { return prunable_; }

  void set_profiling(bool on) { root_->set_profiling(on); }
  /// Compiles (on) / discards (off) sparse forms of every prunable weight
  /// for the eval path; see Module::set_sparse and tensor/sparse.hpp.
  void set_sparse(bool on) { root_->set_sparse(on); }
  void zero_grad();
  /// Re-applies all masks so pruned weights are exactly zero.
  void enforce_masks();

  /// Total / active counts over *prunable* weights — the denominators of the
  /// paper's prune ratio (biases and BN affine params are excluded, as in
  /// the reference implementation).
  int64_t prunable_total() const;
  int64_t prunable_active() const;
  /// Fraction of prunable weights removed, in [0, 1].
  double prune_ratio() const;
  /// Mask-aware MACs of one sample's forward pass.
  int64_t flops() const { return root_->flops(); }
  /// Count of all learnable scalars (pruned or not).
  int64_t param_count() const;

  /// Full state: parameter values, masks, and batch-norm running stats.
  std::vector<std::pair<std::string, Tensor>> state() const;
  /// Restores state produced by `state()`; unknown names are an error,
  /// missing names keep their current value.
  void load_state(const std::vector<std::pair<std::string, Tensor>>& state);

  /// Deep copy via the architecture registry.
  std::unique_ptr<Network> clone() const;

 private:
  std::string arch_;
  TaskSpec task_;
  ModulePtr root_;
  std::vector<Parameter*> params_;
  std::vector<PrunableSpec> prunable_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
};

using NetworkPtr = std::unique_ptr<Network>;

/// Architecture registry. Known arch names:
///   resnet8 | resnet14 | resnet20  — 3-stage residual nets (n = 1/2/3 blocks)
///   vgg11                          — plain conv stacks + FC head
///   densenet                       — 3 dense blocks with transitions
///   wrn                            — wide & shallow residual net
///   resnet_im | resnet_im_l        — wider nets for the ImageNet-analog task
///   segnet                         — encoder/decoder for dense prediction
/// `seed` drives weight initialization (deterministic builds).
NetworkPtr build_network(const std::string& arch, const TaskSpec& task, uint64_t seed);

/// All classification arch names (the CIFAR-analog family).
std::vector<std::string> classification_archs();

}  // namespace rp::nn
