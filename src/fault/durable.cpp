#include "fault/durable.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/fault.hpp"
#include "fault/lease.hpp"
#include "obs/obs.hpp"

namespace rp::fault {

namespace fs = std::filesystem;

namespace {

/// Retry budget for transient faults: first try + 3 retries.
constexpr int kMaxAttempts = 4;

/// Exponential backoff between retries: 1ms, 4ms, 16ms. ::nanosleep keeps
/// the threading layer (rp-lint R2) out of this low-level library.
void backoff_sleep(int attempt) {
  const long us = 1000L << (2 * attempt);
  ::timespec ts{us / 1000000, (us % 1000000) * 1000};
  ::nanosleep(&ts, nullptr);
}

std::string errno_text() { return std::strerror(errno); }

void write_all(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("durable_write: write failed for " + path + ": " + errno_text());
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
}

/// Best-effort fsync of the directory holding `path`, so the publish rename
/// itself survives power loss. Some filesystems reject directory fsync;
/// that downgrade is not an error the caller can act on.
void sync_parent_dir(const std::string& path) {
  const std::string dir = fs::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// One tmp-write-fsync-rename attempt. Throws InjectedFault on a firing
/// transient injection point and std::runtime_error on real I/O failure;
/// the caller owns cleanup of the tmp file.
void attempt_publish(const std::string& tmp, const std::string& path, const std::string& bytes) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("durable_write: cannot open " + tmp + ": " + errno_text());
  }

  try {
    if (should_fire(Point::kCrashWrite)) {
      // The torn prefix a power cut would leave; only ever in the tmp file.
      write_all(fd, bytes.data(), bytes.size() / 2, tmp);
      crash_now();
    }

    // The silent-corruption points damage the payload but let the write
    // "succeed" — the checked-artifact footer is what must catch them.
    std::string damaged;
    const std::string* payload = &bytes;
    if (should_fire(Point::kTornWrite)) {
      damaged = bytes.substr(0, bytes.size() / 2);
      payload = &damaged;
    }
    if (should_fire(Point::kBitflip) && !payload->empty()) {
      if (payload != &damaged) damaged = bytes;
      const uint64_t bit =
          mix64(static_cast<uint64_t>(arrival_count(Point::kBitflip))) % (damaged.size() * 8);
      damaged[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(damaged[bit / 8]) ^ (1u << (bit % 8)));
      payload = &damaged;
    }

    if (should_fire(Point::kWrite)) {
      write_all(fd, payload->data(), payload->size() / 2, tmp);
      throw InjectedFault("injected write fault [" + tmp + "]");
    }
    write_all(fd, payload->data(), payload->size(), tmp);

    if (should_fire(Point::kFsync)) throw InjectedFault("injected fsync fault [" + tmp + "]");
    if (::fsync(fd) != 0) {
      throw std::runtime_error("durable_write: fsync failed for " + tmp + ": " + errno_text());
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) {
    throw std::runtime_error("durable_write: close failed for " + tmp + ": " + errno_text());
  }

  if (should_fire(Point::kCrashRename)) crash_now();
  if (should_fire(Point::kRename)) throw InjectedFault("injected rename fault [" + path + "]");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("durable_write: rename to " + path + " failed: " + errno_text());
  }
  sync_parent_dir(path);
}

void remove_quiet(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

}  // namespace

void durable_write(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  for (int attempt = 0;; ++attempt) {
    try {
      attempt_publish(tmp, path, bytes);
      return;
    } catch (const InjectedFault& e) {
      remove_quiet(tmp);
      if (attempt + 1 >= kMaxAttempts) {
        throw std::runtime_error("durable_write: retries exhausted for " + path + ": " +
                                 e.what());
      }
      obs::count(obs::Counter::kIoRetries);
      backoff_sleep(attempt);
    } catch (const std::runtime_error&) {
      remove_quiet(tmp);
      throw;
    }
  }
}

std::string read_file(const std::string& path) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (should_fire(Point::kRead)) throw InjectedFault("injected read fault [" + path + "]");
      std::ifstream is(path, std::ios::binary);
      if (!is) throw std::runtime_error("serialize: cannot open " + path);
      std::ostringstream buf;
      buf << is.rdbuf();
      // failbit alone just means zero bytes were inserted (an empty file —
      // the loader's problem); badbit is a real read error.
      if (is.bad() || buf.bad()) {
        throw std::runtime_error("serialize: read failed for " + path);
      }
      return std::move(buf).str();
    } catch (const InjectedFault& e) {
      if (attempt + 1 >= kMaxAttempts) {
        throw std::runtime_error(std::string("read_file: retries exhausted: ") + e.what());
      }
      obs::count(obs::Counter::kIoRetries);
      backoff_sleep(attempt);
    }
  }
}

namespace {

/// True when a pid-marker suffix names a process that is certainly gone. A
/// malformed marker is stale by definition; a well-formed one is stale only
/// once its process is gone (never EPERM-alive writers).
bool owner_gone(const std::string& pid_text) {
  int64_t pid = 0;
  bool digits = !pid_text.empty();
  for (const char c : pid_text) {
    digits = digits && std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (digits) pid = pid * 10 + (c - '0');
  }
  return !digits || (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH);
}

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

}  // namespace

int clean_stale_tmp(const std::string& dir) {
  int removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    const std::string name = entry.path().filename().string();
    bool stale = false;
    if (name.ends_with(".tmp")) {
      // Legacy shared tmp suffix: no owner marker, so it can only be the
      // leftover of a crashed pre-durable writer.
      stale = true;
    } else if (const auto marker = name.rfind(".tmp."); marker != std::string::npos) {
      stale = owner_gone(name.substr(marker + 5));
    } else if (const auto qmarker = name.rfind(".q."); qmarker != std::string::npos) {
      // Quarantine take-files (`<artifact>.q.<pid>`, exp::ArtifactCache)
      // and lease-reclaim take-files (`<artifact>.claim.q.<pid>`,
      // fault::lease_try_acquire): pid-owned exactly like `.tmp.<pid>` — a
      // crash between the take rename and its classification/unlink leaves
      // one behind.
      stale = owner_gone(name.substr(qmarker + 3));
    } else if (const auto cmarker = name.rfind(".claim."); cmarker != std::string::npos &&
                                                          all_digits(name.substr(cmarker + 7))) {
      // Pid-marked lease source links (`<artifact>.claim.<pid>`,
      // fault::lease_try_acquire): the owner unlinks its own on release,
      // so one with a dead owner is a crashed claimant's leftover. The
      // all-digits guard keeps artifact names that merely contain
      // ".claim." out of the sweep.
      stale = owner_gone(name.substr(cmarker + 7));
    } else if (name.ends_with(".claim")) {
      // Canonical lease files: the content names the owner pid
      // (lease.hpp). A dead-owner or malformed claim will never be
      // released; sweeping it here means a restarted grid starts clean
      // instead of waiting one lease period per crashed cell. Liveness
      // only — an alive-but-slow owner's claim is the executor's
      // lease-period decision, not directory hygiene.
      const LeaseInfo info = lease_probe(entry.path().string().substr(
          0, entry.path().string().size() - 6));
      stale = info.exists && (info.malformed || (::kill(info.owner, 0) != 0 && errno == ESRCH));
    }
    if (stale) {
      std::error_code rm_ec;
      if (fs::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace rp::fault
