#include "fault/lease.hpp"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/durable.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace rp::fault {

namespace {

/// Same retry budget / backoff shape as durable_write: first try + 3
/// retries at 1ms, 4ms, 16ms.
constexpr int kMaxAttempts = 4;

void backoff_sleep(int attempt) {
  const long us = 1000L << (2 * attempt);
  ::timespec ts{us / 1000000, (us % 1000000) * 1000};
  ::nanosleep(&ts, nullptr);
}

constexpr const char* kLeaseMagic = "RPLEASE1";

std::string lease_record(pid_t pid) {
  return std::string(kLeaseMagic) + "\n" + std::to_string(pid) + "\n";
}

int64_t now_ms() {
  ::timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// Parses a claim file already renamed (or linked) to `path`. Claim
/// contents are always whole — they are published by durable_write's
/// atomic rename and shared by link(2) — so a short or garbled read means
/// a foreign/legacy file, which lease_expired treats as stale.
LeaseInfo parse_claim(const std::string& path) {
  LeaseInfo info;
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return info;
  info.exists = true;
  const int64_t mtime_ms =
      static_cast<int64_t>(st.st_mtim.tv_sec) * 1000 + st.st_mtim.tv_nsec / 1000000;
  const int64_t age = now_ms() - mtime_ms;
  info.age_ms = age < 0 ? 0 : age;

  // Plain (non-injected) read: a claim is lock metadata, not an artifact,
  // and probes must stay cheap and side-effect free.
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buf;
  if (is) buf << is.rdbuf();
  const std::string text = std::move(buf).str();
  std::istringstream lines(text);
  std::string magic, pid_text;
  std::getline(lines, magic);
  std::getline(lines, pid_text);
  bool digits = !pid_text.empty();
  int64_t pid = 0;
  for (const char c : pid_text) {
    digits = digits && std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (digits) pid = pid * 10 + (c - '0');
  }
  if (magic != kLeaseMagic || !digits) {
    info.malformed = true;
    return info;
  }
  info.owner = static_cast<pid_t>(pid);
  return info;
}

bool owner_gone(pid_t pid) { return ::kill(pid, 0) != 0 && errno == ESRCH; }

void remove_quiet(const std::string& path) { ::unlink(path.c_str()); }

}  // namespace

std::string claim_path(const std::string& base) { return base + ".claim"; }

LeaseInfo lease_probe(const std::string& base) { return parse_claim(claim_path(base)); }

bool lease_expired(const LeaseInfo& info, int64_t lease_ms) {
  if (!info.exists) return false;
  if (info.malformed) return true;
  return owner_gone(info.owner) || info.age_ms > lease_ms;
}

LeaseAcquire lease_try_acquire(const std::string& base, int64_t lease_ms) {
  const std::string claim = claim_path(base);
  const std::string src = claim + "." + std::to_string(::getpid());
  bool reclaimed = false;
  for (int attempt = 0;; ++attempt) {
    try {
      const LeaseInfo info = parse_claim(claim);
      if (info.exists) {
        if (!lease_expired(info, lease_ms)) return LeaseAcquire::kHeld;
        // Take-and-reclaim: rename the stale claim to a pid-unique
        // take-file so exactly one reclaimer wins, mirroring the cache
        // quarantine protocol. A failed rename means we lost the race (or
        // the owner released); either way someone else is making progress
        // on this cell, so report it held and let the caller poll.
        const std::string taken = claim + ".q." + std::to_string(::getpid());
        if (::rename(claim.c_str(), taken.c_str()) != 0) {
          return LeaseAcquire::kHeld;
        }
        // ABA guard: between our probe and the take rename, another
        // process may have reclaimed the stale claim and acquired a fresh
        // one — which our rename just stole. Restore it (re-link the taken
        // inode back; EEXIST means yet another claimant moved in, and the
        // victim's heartbeat will report the loss either way).
        const LeaseInfo took = parse_claim(taken);
        if (!lease_expired(took, lease_ms)) {
          ::link(taken.c_str(), claim.c_str());
          remove_quiet(taken);
          return LeaseAcquire::kHeld;
        }
        remove_quiet(taken);
        reclaimed = true;
      }
      if (should_fire(Point::kClaim)) {
        throw InjectedFault("injected claim fault [" + claim + "]");
      }
      durable_write(src, lease_record(::getpid()));
      if (::link(src.c_str(), claim.c_str()) != 0) {
        const int err = errno;
        remove_quiet(src);
        if (err == EEXIST) return LeaseAcquire::kHeld;  // lost the race
        throw std::runtime_error("lease: link to " + claim + " failed");
      }
      if (should_fire(Point::kCrashClaim)) crash_now();
      return reclaimed ? LeaseAcquire::kReclaimed : LeaseAcquire::kAcquired;
    } catch (const InjectedFault& e) {
      remove_quiet(src);
      if (attempt + 1 >= kMaxAttempts) {
        throw std::runtime_error("lease: retries exhausted for " + claim + ": " + e.what());
      }
      obs::count(obs::Counter::kIoRetries);
      backoff_sleep(attempt);
    }
  }
}

bool lease_heartbeat(const std::string& base) {
  if (should_fire(Point::kHeartbeat)) return false;  // dropped tick
  return ::utimensat(AT_FDCWD, claim_path(base).c_str(), nullptr, 0) == 0;
}

void lease_release(const std::string& base) {
  const std::string claim = claim_path(base);
  remove_quiet(claim);
  remove_quiet(claim + "." + std::to_string(::getpid()));
}

}  // namespace rp::fault
