#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rp::fault {

/// rp::fault — deterministic fault injection for the durable-storage layer.
///
/// The experiment pipeline must survive kills, torn writes, disk errors, and
/// concurrent runners; this header is how that claim is *proven* rather than
/// assumed. Named injection points sit on every durable I/O edge
/// (durable.hpp), and an `RP_FAULTS` spec arms them with a counter-indexed
/// schedule, so each recovery path is exercisable from ctest the same way
/// the determinism contract is exercised by bit-exactness tests.
///
/// Grammar (DESIGN.md "Fault tolerance & durability"):
///
///   RP_FAULTS = clause ("," clause)*
///   clause    = point [":" trigger]
///   point     = "write" | "fsync" | "rename" | "read"
///             | "torn-write" | "bitflip" | "crash-write" | "crash-rename"
///             | "claim" | "heartbeat" | "crash-claim"
///   trigger   = "once=N" | "every=N" | "always"      (default: once=1)
///
/// Triggers index the per-point *arrival counter*: `once=N` fires at the
/// N-th arrival only, `every=N` at every N-th arrival, `always` at all of
/// them. Arrivals are counted in program order on the durable I/O paths, so
/// a given spec replays the exact same fault schedule on every run — the
/// crash-matrix test depends on this to SIGKILL a sweep at a chosen write.
enum class Point : int {
  kWrite = 0,    ///< transient failure mid payload write (durable_write)
  kFsync,        ///< transient fsync failure (durable_write)
  kRename,       ///< transient failure of the publish rename (durable_write)
  kRead,         ///< transient failure of fault::read_file
  kTornWrite,    ///< silent: half the payload is written, call succeeds
  kBitflip,      ///< silent: one payload bit flipped, call succeeds
  kCrashWrite,   ///< SIGKILL mid payload write (tmp file left half-written)
  kCrashRename,  ///< SIGKILL after fsync, before the publish rename
  kClaim,        ///< transient failure while acquiring a lease (lease.hpp)
  kHeartbeat,    ///< transient failure of a lease heartbeat refresh
  kCrashClaim,   ///< SIGKILL immediately after winning a lease acquisition
  kCount
};

/// Spec-grammar name of a point ("write", "torn-write", ...).
const char* point_name(Point p);

/// Thrown by a firing *transient* injection point. The durable layer treats
/// it exactly like a transient I/O error: bounded retry with backoff.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// True when any injection clause is armed (one relaxed atomic load).
bool armed();

/// Parses and arms a spec; "" disarms everything. Always resets all arrival
/// and fire counters. Throws std::invalid_argument on bad grammar.
void configure(const std::string& spec);

/// Reads RP_FAULTS into configure(). Runs at static initialization of the
/// fault translation unit; a malformed value is a usage error that aborts
/// the process (exit 2) — a half-armed schedule must never run silently.
void init_from_env();

/// Advances the arrival counter of `point` and reports whether the armed
/// schedule fires at this arrival. Counts obs Counter::kFaultsInjected on
/// fire. Always false while disarmed.
bool should_fire(Point p);

/// Arrivals at / fires of a point since the last configure() (tests).
int64_t arrival_count(Point p);
int64_t fired_count(Point p);

/// SIGKILLs the calling process — no unwinding, no atexit, exactly what a
/// power cut / OOM kill looks like. The crash injection points (kCrashWrite,
/// kCrashRename, kCrashClaim) all funnel through this.
[[noreturn]] void crash_now();

/// Deterministic 64-bit mixer (splitmix64 finalizer). The fault layer's own
/// schedule randomness (e.g. which bit a kBitflip flips at arrival k) goes
/// through this instead of rp::Rng so rp_fault stays below rp_tensor in the
/// dependency order.
uint64_t mix64(uint64_t x);

}  // namespace rp::fault
