#include "fault/crc32c.hpp"

#include <array>

namespace rp::fault {

namespace {

constexpr std::array<uint32_t, 256> make_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = make_table();

}  // namespace

uint32_t crc32c(const char* data, size_t n, uint32_t crc) {
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rp::fault
