#pragma once

#include <string>

namespace rp::fault {

/// Durable-storage primitives shared by every artifact write in the tree
/// (rp-lint R8 flags raw ofstream / filesystem::rename artifact I/O in src/
/// that bypasses them).

/// Crash-safe, concurrency-safe whole-file publish:
///
///   1. write `bytes` to `path + ".tmp.<pid>"` — pid-unique, so concurrent
///      runner processes sharing one cache directory never clobber each
///      other's in-flight writes;
///   2. fsync the tmp file (the payload is on disk before it is visible);
///   3. atomically ::rename it to `path` (readers see the old file or the
///      whole new one, never a prefix);
///   4. fsync the parent directory (best-effort), so the rename itself
///      survives power loss.
///
/// Transient failures (as modeled by the fault-injection points
/// fault.hpp arms on steps 1-3) are retried with bounded exponential
/// backoff, counting obs Counter::kIoRetries per retry; the tmp file is
/// unlinked on every failure. Non-injected I/O errors (ENOSPC, EACCES, a
/// missing parent directory) propagate immediately as std::runtime_error
/// naming the path — retrying a full disk only delays the loud failure.
void durable_write(const std::string& path, const std::string& bytes);

/// Whole-file read with the matching `read` injection point: an injected
/// transient read fault is retried like a transient write fault; real open
/// or read errors throw std::runtime_error naming the path immediately.
std::string read_file(const std::string& path);

/// Removes stale in-flight tmp files from `dir` (non-recursive): any
/// `*.tmp` (the legacy shared tmp suffix, which has no owner marker); any
/// `*.tmp.<pid>` writer tmp, `*.q.<pid>` quarantine/reclaim take-file
/// (exp::ArtifactCache, fault::lease_try_acquire), or `*.claim.<pid>`
/// lease source link whose owning process is gone (kill(pid, 0) ==
/// ESRCH); and any canonical `*.claim` lease whose content-recorded owner
/// is gone or unparseable (lease.hpp). Live writers and live lease
/// holders keep their files — safe to call while concurrent runners share
/// the directory. Returns the number of files removed.
int clean_stale_tmp(const std::string& dir);

}  // namespace rp::fault
