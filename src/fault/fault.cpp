#include "fault/fault.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.hpp"

namespace rp::fault {

namespace {

constexpr int kPointCount = static_cast<int>(Point::kCount);

/// One armed clause. `every` distinguishes once=N (fire at arrival N only)
/// from every=N (fire at arrivals N, 2N, 3N, ...); `always` is every=1.
struct Clause {
  bool armed = false;
  bool every = false;
  int64_t n = 1;
};

// The schedule is written only by configure() (tests / process start) and
// read on the durable I/O paths; per-point arrival counters advance
// atomically so concurrent writers see a total order of arrivals.
// rp-lint: allow(R3) fault schedule; written only by configure(), read-only on I/O paths
Clause g_clauses[kPointCount];
// rp-lint: allow(R3) master switch; one relaxed load on the disarmed fast path
std::atomic<bool> g_armed{false};
// rp-lint: allow(R3) per-point arrival counters; deterministic schedule state, never a result
std::atomic<int64_t> g_arrivals[kPointCount];
// rp-lint: allow(R3) per-point fire counters; test observability only
std::atomic<int64_t> g_fired[kPointCount];

Point parse_point(const std::string& name, const std::string& spec) {
  for (int p = 0; p < kPointCount; ++p) {
    if (name == point_name(static_cast<Point>(p))) return static_cast<Point>(p);
  }
  throw std::invalid_argument("RP_FAULTS: unknown injection point '" + name + "' in '" + spec +
                              "' (points: write, fsync, rename, read, torn-write, bitflip, "
                              "crash-write, crash-rename, claim, heartbeat, crash-claim)");
}

int64_t parse_count(const std::string& text, const std::string& spec) {
  int64_t n = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, n);
  if (ec != std::errc{} || ptr != last || n < 1) {
    throw std::invalid_argument("RP_FAULTS: bad count '" + text + "' in '" + spec +
                                "' (expected an integer >= 1)");
  }
  return n;
}

Clause parse_trigger(const std::string& trigger, const std::string& spec) {
  Clause c;
  c.armed = true;
  if (trigger.empty()) return c;  // default once=1
  if (trigger == "always") {
    c.every = true;
    c.n = 1;
    return c;
  }
  const auto eq = trigger.find('=');
  const std::string kind = trigger.substr(0, eq);
  if (eq == std::string::npos || (kind != "once" && kind != "every")) {
    throw std::invalid_argument("RP_FAULTS: bad trigger '" + trigger + "' in '" + spec +
                                "' (expected once=N, every=N, or always)");
  }
  c.every = kind == "every";
  c.n = parse_count(trigger.substr(eq + 1), spec);
  return c;
}

}  // namespace

const char* point_name(Point p) {
  switch (p) {
    case Point::kWrite: return "write";
    case Point::kFsync: return "fsync";
    case Point::kRename: return "rename";
    case Point::kRead: return "read";
    case Point::kTornWrite: return "torn-write";
    case Point::kBitflip: return "bitflip";
    case Point::kCrashWrite: return "crash-write";
    case Point::kCrashRename: return "crash-rename";
    case Point::kClaim: return "claim";
    case Point::kHeartbeat: return "heartbeat";
    case Point::kCrashClaim: return "crash-claim";
    case Point::kCount: break;
  }
  return "?";
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void configure(const std::string& spec) {
  Clause parsed[kPointCount];
  size_t pos = 0;
  while (pos < spec.size()) {
    auto end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) {
      throw std::invalid_argument("RP_FAULTS: empty clause in '" + spec + "'");
    }
    const auto colon = clause.find(':');
    const Point p = parse_point(clause.substr(0, colon), spec);
    if (parsed[static_cast<int>(p)].armed) {
      throw std::invalid_argument("RP_FAULTS: duplicate point '" +
                                  std::string(point_name(p)) + "' in '" + spec + "'");
    }
    parsed[static_cast<int>(p)] =
        parse_trigger(colon == std::string::npos ? "" : clause.substr(colon + 1), spec);
  }

  bool any = false;
  for (int p = 0; p < kPointCount; ++p) {
    g_clauses[p] = parsed[p];
    g_arrivals[p].store(0, std::memory_order_relaxed);
    g_fired[p].store(0, std::memory_order_relaxed);
    any = any || parsed[p].armed;
  }
  g_armed.store(any, std::memory_order_relaxed);
}

void init_from_env() {
  const char* spec = std::getenv("RP_FAULTS");
  if (spec == nullptr) return;
  try {
    configure(spec);
  } catch (const std::invalid_argument& e) {
    // A half-armed fault schedule must never run silently; this is a usage
    // error on the level of a bad command line.
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

bool should_fire(Point p) {
  if (!armed()) return false;
  const Clause& c = g_clauses[static_cast<int>(p)];
  if (!c.armed) return false;
  const int64_t arrival =
      g_arrivals[static_cast<int>(p)].fetch_add(1, std::memory_order_relaxed) + 1;
  const bool fire = c.every ? (arrival % c.n == 0) : (arrival == c.n);
  if (fire) {
    g_fired[static_cast<int>(p)].fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::kFaultsInjected);
  }
  return fire;
}

int64_t arrival_count(Point p) {
  return g_arrivals[static_cast<int>(p)].load(std::memory_order_relaxed);
}

int64_t fired_count(Point p) {
  return g_fired[static_cast<int>(p)].load(std::memory_order_relaxed);
}

void crash_now() {
  ::raise(SIGKILL);
  ::_exit(128 + SIGKILL);  // unreachable unless SIGKILL is somehow blocked
}

uint64_t mix64(uint64_t x) {
  // splitmix64 finalizer (Steele et al.) — full-avalanche, constant-time.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
// Arm the schedule before any artifact I/O can happen.
// rp-lint: allow(R3) one-time environment hookup at load
const bool g_env_init = [] {
  init_from_env();
  return true;
}();
}  // namespace

}  // namespace rp::fault
