#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>

namespace rp::fault {

/// rp::fault lease files — serverless mutual exclusion over a shared
/// artifact directory (DESIGN.md "Distributed sweep & leases").
///
/// A lease guards one grid cell (one artifact key). The canonical lock name
/// is `<base>.claim`; acquisition goes through a pid-marked source file so
/// every step is atomic on POSIX filesystems:
///
///   1. durable_write the owner record to `<base>.claim.<pid>` (pid-unique,
///      so concurrent claimants never clobber each other);
///   2. ::link it to `<base>.claim` — link(2) fails with EEXIST if any
///      other claimant already holds the canonical name, so exactly one
///      process wins no matter how many race.
///
/// Ownership while held is advertised two ways: the claim *content* names
/// the owner pid (liveness probe, mirroring clean_stale_tmp's owner_gone)
/// and the claim *mtime* is refreshed by lease_heartbeat (staleness probe
/// for owners that are alive but wedged). A claim is reclaimable when its
/// owner is certainly gone OR its mtime is older than the lease period.
/// Reclaim itself is race-safe: the reclaimer atomically renames the
/// specific stale claim to a pid-unique `.q.<pid>` take-file (exactly one
/// reclaimer wins the rename; losers see ENOENT and re-probe) before
/// unlinking it — the same take-and-classify protocol the cache quarantine
/// uses.
///
/// Injection points (fault.hpp): `claim` raises a transient fault inside
/// acquisition (absorbed by bounded retry), `heartbeat` drops one refresh
/// tick (the next tick catches up), `crash-claim` SIGKILLs the winner the
/// instant it holds the lease — the schedule every crashed-worker reclaim
/// test is built on.

/// Outcome of one lease_try_acquire call.
enum class LeaseAcquire {
  kHeld,      ///< another live, fresh owner holds the lease — back off
  kAcquired,  ///< this process now holds the lease
  kReclaimed  ///< held, after first reclaiming a dead-owner/expired claim
};

/// What lease_probe saw at the canonical claim name.
struct LeaseInfo {
  bool exists = false;    ///< a canonical claim file is present
  bool malformed = false; ///< present but unparseable (stale by definition)
  pid_t owner = 0;        ///< owner pid from the claim content
  int64_t age_ms = 0;     ///< now - claim mtime, clamped at 0
};

/// Canonical claim path for a cell (`base + ".claim"`). `base` is the
/// artifact path the lease guards, so claims live next to their artifacts
/// and are swept by the same directory hygiene.
std::string claim_path(const std::string& base);

/// Reads the canonical claim without touching it (tests / diagnostics).
LeaseInfo lease_probe(const std::string& base);

/// True when the claim at `base` can be reclaimed: malformed, owner gone,
/// or mtime older than `lease_ms`.
bool lease_expired(const LeaseInfo& info, int64_t lease_ms);

/// One acquisition attempt (with bounded internal retry of *transient*
/// faults only — a held lease returns kHeld immediately, it is the
/// caller's scheduling loop that polls). Reclaims a stale claim first when
/// it finds one. Throws std::runtime_error on unrecoverable I/O failure.
LeaseAcquire lease_try_acquire(const std::string& base, int64_t lease_ms);

/// Refreshes the claim mtime to now. Only the owner may call this. Returns
/// false when the refresh was dropped (injected heartbeat fault or a
/// vanished claim file — e.g. it was wrongly reclaimed); the caller's next
/// tick retries.
bool lease_heartbeat(const std::string& base);

/// Releases a held lease: unlinks the canonical claim and the pid-marked
/// source link. Idempotent; never throws.
void lease_release(const std::string& base);

}  // namespace rp::fault
