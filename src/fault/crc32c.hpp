#pragma once

#include <cstddef>
#include <cstdint>

namespace rp::fault {

/// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum of
/// the checked-artifact footer (tensor/serialize.cpp). Table-driven software
/// implementation; artifact files are small relative to the train/eval work
/// they cache, so portability beats the hardware instruction here.
///
/// `crc` chains partial computations: crc32c(b, n2, crc32c(a, n1)) equals
/// crc32c over a‖b. Pass 0 (the default) to start a fresh checksum.
uint32_t crc32c(const char* data, size_t n, uint32_t crc = 0);

}  // namespace rp::fault
