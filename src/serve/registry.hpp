#pragma once

#include <string>
#include <vector>

#include "exp/cache.hpp"
#include "nn/network.hpp"

namespace rp::serve {

/// rp::serve — batched async inference over a pruned-model family.
///
/// The paper's headline claim (§5, §7) is that *measured* prune potential
/// should gate deployment of pruned networks. The serving stack turns that
/// into a live policy: a ModelRegistry holds one prune-ratio family (the
/// dense parent plus its PRUNERETRAIN checkpoints), a Router maps each
/// request's declared distribution tag to the cheapest variant whose
/// measured per-distribution potential covers it, and an Engine coalesces
/// single-sample requests into batched forward passes on the persistent
/// thread pool (engine.hpp).

/// Declares one prune-ratio family by its artifact-cache keys. All states
/// are RPT tensor bundles written by exp::Runner (or any put_state caller);
/// they load through the CRC32C-checked, quarantine-on-corruption path.
struct FamilySpec {
  std::string arch;                       ///< architecture registry name
  nn::TaskSpec task;
  std::string parent_key;                 ///< dense parent artifact
  std::vector<std::string> variant_keys;  ///< pruned checkpoints, any order
};

/// One loaded, servable model. `ratio` and `flops` are *measured* from the
/// loaded masks (not trusted from config), so the router's cost ordering can
/// never drift from the artifact actually being served.
struct Variant {
  std::string key;
  double ratio = 0.0;   ///< achieved prune ratio over prunable weights
  int64_t flops = 0;    ///< mask-aware MACs of one sample's forward pass
  nn::NetworkPtr net;
};

/// Loads a prune-ratio family from RPT artifacts and keeps it resident for
/// serving. Fault policy: a corrupt *variant* artifact is quarantined by the
/// cache layer and dropped from the family — the server degrades to the
/// remaining variants, it never crashes and never serves garbage (the CRC32C
/// footer catches damage before a single weight is loaded). A missing or
/// corrupt *parent* throws: the router's fallback target must exist.
///
/// Loaded networks have their masks re-enforced and, when the RP_SPARSE
/// engine is live, their sparse forms compiled once at load — weights never
/// mutate during serving, so the compiled forms cannot go stale (contrast
/// nn::predict, which recompiles per call precisely because training may
/// intervene between calls).
class ModelRegistry {
 public:
  ModelRegistry(const FamilySpec& spec, exp::ArtifactCache& cache);

  /// All loaded variants, parent first, then ratio-ascending (ties keep
  /// declaration order). variants()[0] is always the dense parent.
  const std::vector<Variant>& variants() const { return variants_; }
  const Variant& parent() const { return variants_.front(); }

  const nn::TaskSpec& task() const { return spec_.task; }
  const std::string& arch() const { return spec_.arch; }

  /// Variant artifacts dropped at load (corrupt or missing).
  int dropped() const { return dropped_; }

 private:
  FamilySpec spec_;
  std::vector<Variant> variants_;
  int dropped_ = 0;
};

}  // namespace rp::serve
