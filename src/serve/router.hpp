#pragma once

#include <map>
#include <string>

#include "core/guidelines.hpp"
#include "serve/registry.hpp"

namespace rp::serve {

/// Potential-aware request router — the paper's §5/§7 guidelines as a live
/// serving policy. Each request declares a distribution tag ("nominal",
/// "corrupt/fog/3", ...); the router holds measured PotentialEvidence per
/// tag and picks the *cheapest* variant whose prune ratio the evidence
/// covers:
///
///   safe = core::safe_prune_ratio(evidence[tag])   // δ-margin potential
///   pick = max-ratio variant with ratio <= safe    // fewest active MACs
///
/// Fallbacks are conservative: a tag with no registered evidence, or one
/// whose guideline is DoNotPrune, is served by the dense parent — exactly
/// the paper's "don't prune if unexpected shifts may occur".
///
/// Evidence is registered before serving starts and read-only afterwards, so
/// route() takes no lock and is safe to call from the engine's dispatcher
/// concurrently with client submissions.
class Router {
 public:
  explicit Router(const ModelRegistry& registry) : registry_(registry) {}

  /// Registers (or replaces) the measured evidence for one distribution
  /// tag. Not thread-safe against route(); populate before serving.
  void set_evidence(const std::string& tag, const core::PotentialEvidence& evidence);

  /// True when `tag` has registered evidence.
  bool has_evidence(const std::string& tag) const { return evidence_.count(tag) != 0; }

  struct Decision {
    const Variant* variant = nullptr;  ///< the model to serve this request
    core::Guideline guideline = core::Guideline::DoNotPrune;
    bool evidence_found = false;       ///< false => parent fallback (unknown tag)
  };

  /// Maps a distribution tag to the variant that serves it. Never fails:
  /// the worst case is the dense parent.
  Decision route(const std::string& tag) const;

 private:
  const ModelRegistry& registry_;
  // std::map: deterministic iteration order (rp-lint R4 discipline).
  std::map<std::string, core::PotentialEvidence> evidence_;
};

}  // namespace rp::serve
