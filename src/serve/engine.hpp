#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>  // rp-lint: allow(R2) the serving dispatcher is a long-lived control thread; all compute parallelism stays in rp::parallel
#include <vector>

#include "serve/registry.hpp"
#include "serve/router.hpp"

namespace rp::serve {

/// Engine tuning knobs. Every field is validated at engine construction
/// (std::invalid_argument on nonsense) and overridable from the environment
/// with the strict parse-or-exit(2) convention shared by RP_FAULTS /
/// RP_THREADS:
///
///   RP_SERVE_BATCH    max requests coalesced into one forward pass (>= 1)
///   RP_SERVE_QUEUE    admission bound: queued + in-flight slots   (>= 1)
///   RP_SERVE_WAIT_US  deadline: max age of the oldest pending request
///                     before a partial batch is flushed            (>= 0)
struct EngineConfig {
  int max_batch = 16;
  int queue_depth = 64;
  int64_t max_wait_us = 500;

  /// `base` with any RP_SERVE_* overrides applied. Unparsable values print
  /// the offending variable and exit(2) — a typo'd knob must never run
  /// silently with a default.
  static EngineConfig from_env(EngineConfig base);
  static EngineConfig from_env();  ///< from_env(EngineConfig{})
};

/// Routing metadata attached to a served response.
struct RouteInfo {
  std::string variant_key;
  double ratio = 0.0;
  core::Guideline guideline = core::Guideline::DoNotPrune;
  bool evidence_found = false;
};

/// Batched async inference engine over one ModelRegistry.
///
/// Clients submit single-sample requests; a dispatcher thread coalesces them
/// into batched forward passes, grouped per routed variant, executed on the
/// persistent thread pool via Network::forward. Flush policy: a batch runs
/// as soon as max_batch requests are pending OR the oldest pending request
/// has waited max_wait_us — latency-bounded coalescing.
///
/// Admission control: the slot table is the bound. queue_depth requests may
/// be queued or in flight; submit() on a full table rejects immediately
/// (nullopt, counted under serve.rejects) instead of queueing unboundedly.
///
/// Lifecycle: requests may be submitted before start() (they sit queued);
/// stop() refuses new admissions, *drains* every queued request through the
/// normal batch path, then joins the dispatcher — a ticket obtained before
/// stop() is always answered. start()/stop() cycles may repeat.
///
/// Determinism: batch *composition* depends on timing, but responses do
/// not — each sample's logits are computed row-independently (row-blocked
/// GEMM with fixed k-order reductions, per-sample conv, eval-mode batch
/// norm), so a request's response is memcmp-identical to a direct
/// nn::predict on the same variant no matter which requests it shared a
/// batch with. tests/test_serve.cpp enforces this across RP_THREADS ×
/// RP_SPARSE × RP_ARENA.
///
/// Memory: request staging buffers and response rows live in per-slot
/// vectors that grow once to the task's sizes; batch assembly and forward
/// temporaries are mem::Scope scratch — steady-state serving performs no
/// heap allocation on the request path (the PR 8 lane pools absorb it).
class Engine {
 public:
  /// The registry and router must outlive the engine. Throws
  /// std::invalid_argument on a nonsense config.
  Engine(const ModelRegistry& registry, const Router& router, EngineConfig cfg);
  ~Engine();  ///< stop()s (drains) if still running
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// One queued request. Single-use: pass to exactly one wait_into() call.
  struct Ticket {
    int slot = -1;
    uint64_t seq = 0;
  };

  /// Enqueues one sample ([C,H,W] or [1,C,H,W], matching the registry's
  /// task) under a distribution tag. Returns nullopt when rejected — queue
  /// full, or the engine is stopped/stopping. Throws std::invalid_argument
  /// on a shape mismatch: malformed input is a caller bug, not load.
  std::optional<Ticket> submit(const Tensor& image, const std::string& tag);

  /// Blocks until the ticket's request is served, then copies the sample's
  /// logits into *logits ([classes] or [classes,H,W]; storage is reused
  /// when already the right shape). Throws std::runtime_error if the batch
  /// failed, std::logic_error on a stale/double-waited ticket.
  void wait_into(const Ticket& ticket, Tensor* logits, RouteInfo* info = nullptr);

  /// submit + wait_into. False = rejected by admission control.
  bool infer(const Tensor& image, const std::string& tag, Tensor* logits,
             RouteInfo* info = nullptr);

  /// Spawns the dispatcher and (re)opens admission. Idempotent.
  void start();
  /// Closes admission, drains every queued request, joins the dispatcher.
  /// Idempotent; a no-op when never started (queued requests stay queued
  /// for a later start()).
  void stop();
  bool running() const;

  /// Engine-local mirror of the serve.* obs counters (obs may be disabled).
  struct Stats {
    int64_t requests = 0;  ///< admitted
    int64_t rejects = 0;   ///< refused by admission control
    int64_t batches = 0;   ///< coalesced forward passes executed
    int64_t failures = 0;  ///< requests answered with an error
  };
  Stats stats() const;

  const EngineConfig& config() const { return cfg_; }

 private:
  enum class SlotState { kFree, kQueued, kDone, kFailed };

  struct Slot {
    SlotState state = SlotState::kFree;
    uint64_t seq = 0;
    std::string tag;
    std::vector<float> input;    ///< staged sample, grown once to C*H*W
    std::vector<float> output;   ///< served logits row, grown once
    std::vector<int64_t> out_dims;  ///< per-sample logits shape
    std::chrono::steady_clock::time_point enqueue_time;
    const Variant* variant = nullptr;
    core::Guideline guideline = core::Guideline::DoNotPrune;
    bool evidence_found = false;
    std::string error;
  };

  void dispatch_loop();
  void execute(const std::vector<int>& batch);
  void run_batch(const Variant& variant, const std::vector<int>& group);
  void fail_group(const std::vector<int>& group, const std::string& what);

  const ModelRegistry& registry_;
  const Router& router_;
  const EngineConfig cfg_;
  const std::chrono::microseconds max_wait_;

  mutable std::mutex m_;
  std::condition_variable client_cv_;  ///< wakes waiters when slots complete
  std::condition_variable worker_cv_;  ///< wakes the dispatcher on work/stop
  std::vector<Slot> slots_;
  std::vector<int> free_;     ///< free slot indices (LIFO)
  std::vector<int> pending_;  ///< FIFO ring of queued slot indices
  size_t pending_head_ = 0;
  size_t pending_size_ = 0;
  uint64_t next_seq_ = 0;
  bool accepting_ = true;
  bool stop_requested_ = false;
  bool running_ = false;
  Stats stats_;

  // Dispatcher-owned scratch, grown once (never touched by clients).
  std::vector<int> batch_idx_;
  std::vector<int> group_idx_;

  std::thread dispatcher_;  // rp-lint: allow(R2) single long-lived dispatcher; compute runs on rp::parallel via Network::forward
};

}  // namespace rp::serve
