#include "serve/engine.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "tensor/envspec.hpp"

namespace rp::serve {

// ---------------------------------------------------------------------------
// Config

EngineConfig EngineConfig::from_env() { return from_env(EngineConfig{}); }

EngineConfig EngineConfig::from_env(EngineConfig base) {
  return env::die_on_bad_spec([&] {
    EngineConfig cfg = base;
    if (const char* v = std::getenv("RP_SERVE_BATCH")) {
      cfg.max_batch = static_cast<int>(env::parse_int_spec("RP_SERVE_BATCH", v, 1, 1 << 20));
    }
    if (const char* v = std::getenv("RP_SERVE_QUEUE")) {
      cfg.queue_depth = static_cast<int>(env::parse_int_spec("RP_SERVE_QUEUE", v, 1, 1 << 20));
    }
    if (const char* v = std::getenv("RP_SERVE_WAIT_US")) {
      cfg.max_wait_us = env::parse_int_spec("RP_SERVE_WAIT_US", v, 0, int64_t{1} << 40);
    }
    return cfg;
  });
}

namespace {

EngineConfig validated(EngineConfig cfg) {
  if (cfg.max_batch < 1) {
    throw std::invalid_argument("serve: max_batch must be >= 1, got " +
                                std::to_string(cfg.max_batch));
  }
  if (cfg.queue_depth < 1) {
    throw std::invalid_argument("serve: queue_depth must be >= 1, got " +
                                std::to_string(cfg.queue_depth));
  }
  if (cfg.max_wait_us < 0) {
    throw std::invalid_argument("serve: max_wait_us must be >= 0, got " +
                                std::to_string(cfg.max_wait_us));
  }
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle

Engine::Engine(const ModelRegistry& registry, const Router& router, EngineConfig cfg)
    : registry_(registry),
      router_(router),
      cfg_(validated(cfg)),
      max_wait_(cfg_.max_wait_us),
      slots_(static_cast<size_t>(cfg_.queue_depth)),
      pending_(static_cast<size_t>(cfg_.queue_depth), -1) {
  free_.reserve(slots_.size());
  // LIFO free list handed out back-to-front so slot 0 goes first (cosmetic,
  // but keeps tests readable).
  for (int i = static_cast<int>(slots_.size()) - 1; i >= 0; --i) free_.push_back(i);
  batch_idx_.reserve(slots_.size());
  group_idx_.reserve(slots_.size());
}

Engine::~Engine() { stop(); }

void Engine::start() {
  std::unique_lock<std::mutex> lock(m_);
  accepting_ = true;
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  lock.unlock();
  dispatcher_ = std::thread([this] { dispatch_loop(); });  // rp-lint: allow(R2) one long-lived dispatcher thread; all compute parallelism stays in rp::parallel
}

void Engine::stop() {
  {
    std::lock_guard<std::mutex> lock(m_);
    accepting_ = false;
    if (!running_) return;
    stop_requested_ = true;
  }
  worker_cv_.notify_all();
  dispatcher_.join();
  std::lock_guard<std::mutex> lock(m_);
  running_ = false;
}

bool Engine::running() const {
  std::lock_guard<std::mutex> lock(m_);
  return running_;
}

Engine::Stats Engine::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Client side

std::optional<Engine::Ticket> Engine::submit(const Tensor& image, const std::string& tag) {
  const nn::TaskSpec& t = registry_.task();
  const bool chw = image.ndim() == 3 && image.size(0) == t.in_c && image.size(1) == t.in_h &&
                   image.size(2) == t.in_w;
  const bool nchw = image.ndim() == 4 && image.size(0) == 1 && image.size(1) == t.in_c &&
                    image.size(2) == t.in_h && image.size(3) == t.in_w;
  if (!chw && !nchw) {
    throw std::invalid_argument(
        "serve: request image shape " + image.shape().to_string() + " does not match task [" +
        std::to_string(t.in_c) + ", " + std::to_string(t.in_h) + ", " + std::to_string(t.in_w) +
        "] (pass one sample as [C,H,W] or [1,C,H,W])");
  }

  std::unique_lock<std::mutex> lock(m_);
  if (!accepting_ || free_.empty()) {
    // Admission control: a full slot table (or a stopping engine) rejects
    // *now* — back-pressure the client instead of queueing unboundedly.
    ++stats_.rejects;
    obs::count(obs::Counter::kServeRejects);
    return std::nullopt;
  }
  const int idx = free_.back();
  free_.pop_back();
  Slot& s = slots_[static_cast<size_t>(idx)];
  s.state = SlotState::kQueued;
  s.seq = ++next_seq_;
  s.tag = tag;
  s.input.resize(image.data().size());  // rp-lint: allow(R12) request staging buffer; grows to the task's sample size once per slot, then recycles
  std::memcpy(s.input.data(), image.data().data(), image.data().size() * sizeof(float));
  // Wall clock only shapes *batch boundaries* (which requests are coalesced
  // together); per-sample logits are batch-composition-invariant, so no
  // result ever depends on this read.
  s.enqueue_time = std::chrono::steady_clock::now();  // rp-lint: allow(R1) deadline bookkeeping; batching never changes results
  s.error.clear();
  pending_[(pending_head_ + pending_size_) % pending_.size()] = idx;
  ++pending_size_;
  ++stats_.requests;
  obs::count(obs::Counter::kServeRequests);
  lock.unlock();
  worker_cv_.notify_one();
  return Ticket{idx, s.seq};
}

void Engine::wait_into(const Ticket& ticket, Tensor* logits, RouteInfo* info) {
  if (ticket.slot < 0 || ticket.slot >= static_cast<int>(slots_.size())) {
    throw std::logic_error("serve: wait_into on an invalid ticket");
  }
  std::unique_lock<std::mutex> lock(m_);
  Slot& s = slots_[static_cast<size_t>(ticket.slot)];
  if (s.seq != ticket.seq) {
    throw std::logic_error("serve: stale ticket (already waited, or never issued)");
  }
  client_cv_.wait(lock, [&] {
    return s.seq == ticket.seq &&
           (s.state == SlotState::kDone || s.state == SlotState::kFailed);
  });

  if (s.state == SlotState::kFailed) {
    const std::string what = s.error;
    s.state = SlotState::kFree;
    s.seq = 0;  // seqs start at 1: a waited ticket can never match again
    free_.push_back(ticket.slot);
    throw std::runtime_error("serve: request failed: " + what);
  }

  if (info != nullptr) {
    info->variant_key = s.variant->key;
    info->ratio = s.variant->ratio;
    info->guideline = s.guideline;
    info->evidence_found = s.evidence_found;
  }
  const Shape out_shape{std::vector<int64_t>(s.out_dims.begin(), s.out_dims.end())};
  if (logits->shape() != out_shape) *logits = Tensor(out_shape);
  std::memcpy(logits->data().data(), s.output.data(), s.output.size() * sizeof(float));

  s.state = SlotState::kFree;
  s.seq = 0;  // see above: a waited ticket is stale from here on
  free_.push_back(ticket.slot);
}

bool Engine::infer(const Tensor& image, const std::string& tag, Tensor* logits,
                   RouteInfo* info) {
  const auto ticket = submit(image, tag);
  if (!ticket) return false;
  wait_into(*ticket, logits, info);
  return true;
}

// ---------------------------------------------------------------------------
// Dispatcher side

void Engine::dispatch_loop() {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    worker_cv_.wait(lock, [&] { return stop_requested_ || pending_size_ > 0; });
    if (pending_size_ == 0) {
      if (stop_requested_) return;  // drained: every queued request answered
      continue;
    }
    // Deadline-aware coalescing: sleep until the oldest pending request's
    // age reaches max_wait, unless the batch fills (or stop drains) first.
    if (!stop_requested_ && pending_size_ < static_cast<size_t>(cfg_.max_batch)) {
      const auto deadline = slots_[static_cast<size_t>(pending_[pending_head_])].enqueue_time +
                            max_wait_;
      worker_cv_.wait_until(lock, deadline, [&] {
        return stop_requested_ || pending_size_ >= static_cast<size_t>(cfg_.max_batch);
      });
    }
    batch_idx_.clear();
    while (pending_size_ > 0 && batch_idx_.size() < static_cast<size_t>(cfg_.max_batch)) {
      batch_idx_.push_back(pending_[pending_head_]);
      pending_head_ = (pending_head_ + 1) % pending_.size();
      --pending_size_;
    }
    lock.unlock();
    execute(batch_idx_);
    lock.lock();
    client_cv_.notify_all();
  }
}

void Engine::execute(const std::vector<int>& batch) {
  try {
    // Route every request first (read-only over the router's evidence map),
    // then run one coalesced forward pass per distinct variant, walking the
    // registry ladder in its fixed order so execution order is
    // deterministic for a given batch composition.
    for (const int idx : batch) {
      Slot& s = slots_[static_cast<size_t>(idx)];
      const Router::Decision d = router_.route(s.tag);
      s.variant = d.variant;
      s.guideline = d.guideline;
      s.evidence_found = d.evidence_found;
    }
    for (const Variant& v : registry_.variants()) {
      group_idx_.clear();
      for (const int idx : batch) {
        if (slots_[static_cast<size_t>(idx)].variant == &v) group_idx_.push_back(idx);
      }
      if (!group_idx_.empty()) run_batch(v, group_idx_);
    }
  } catch (const std::exception& e) {
    fail_group(batch, e.what());
  }
}

// rp-lint: hot
void Engine::run_batch(const Variant& variant, const std::vector<int>& group) {
  const obs::Span span("serve.batch");
  obs::count(obs::Counter::kServeBatches);
  const nn::TaskSpec& t = registry_.task();
  const int64_t k = static_cast<int64_t>(group.size());
  const int64_t row = t.in_c * t.in_h * t.in_w;

  // One arena generation per batch: the staged input tensor and every
  // forward-pass temporary die before the scope resets — steady-state
  // serving never touches the heap (the response rows live in per-slot
  // buffers that grew once).
  const mem::Scope arena_scope(
      static_cast<std::size_t>(variant.net->param_count()) * sizeof(float));
  Tensor batch = Tensor::scratch(Shape{k, t.in_c, t.in_h, t.in_w});
  float* bd = batch.data().data();
  for (int64_t i = 0; i < k; ++i) {
    std::memcpy(bd + i * row, slots_[static_cast<size_t>(group[static_cast<size_t>(i)])].input.data(),
                static_cast<size_t>(row) * sizeof(float));
  }

  // rp-lint: allow(R12) forward's result is arena scratch inside this flush's mem::Scope (heap only when the engine is off)
  Tensor logits = variant.net->forward(batch, /*train=*/false);
  const int64_t lrow = logits.numel() / k;
  const float* ld = logits.data().data();
  for (int64_t i = 0; i < k; ++i) {
    Slot& s = slots_[static_cast<size_t>(group[static_cast<size_t>(i)])];
    s.output.resize(static_cast<size_t>(lrow));  // rp-lint: allow(R12) response row buffer; grows to the logits extent once per slot, then recycles
    std::memcpy(s.output.data(), ld + i * lrow, static_cast<size_t>(lrow) * sizeof(float));
    s.out_dims.assign(logits.shape().dims().begin() + 1, logits.shape().dims().end());
  }

  std::lock_guard<std::mutex> lock(m_);
  ++stats_.batches;
  for (const int idx : group) slots_[static_cast<size_t>(idx)].state = SlotState::kDone;
}

void Engine::fail_group(const std::vector<int>& group, const std::string& what) {
  std::lock_guard<std::mutex> lock(m_);
  for (const int idx : group) {
    Slot& s = slots_[static_cast<size_t>(idx)];
    if (s.state != SlotState::kQueued) continue;  // already answered this flush
    s.state = SlotState::kFailed;
    s.error = what;
    ++stats_.failures;
  }
}

}  // namespace rp::serve
