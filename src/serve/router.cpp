#include "serve/router.hpp"

namespace rp::serve {

void Router::set_evidence(const std::string& tag, const core::PotentialEvidence& evidence) {
  evidence_[tag] = evidence;
}

Router::Decision Router::route(const std::string& tag) const {
  Decision d;
  d.variant = &registry_.parent();
  const auto it = evidence_.find(tag);
  if (it == evidence_.end()) return d;  // unknown distribution: dense parent

  d.evidence_found = true;
  d.guideline = core::recommend(it->second);
  const double safe = core::safe_prune_ratio(it->second);
  // variants() is ratio-ascending with the parent (ratio 0) first, so the
  // last covered entry is the cheapest servable model: highest prune ratio
  // => fewest active MACs. DoNotPrune yields safe = 0, which covers only
  // the parent.
  for (const Variant& v : registry_.variants()) {
    if (v.ratio <= safe) d.variant = &v;
  }
  return d;
}

}  // namespace rp::serve
