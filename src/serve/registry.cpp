#include "serve/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/models.hpp"
#include "obs/obs.hpp"
#include "tensor/sparse.hpp"

namespace rp::serve {

namespace {

/// Materializes one servable network from a cached state bundle, or nullptr
/// when the artifact is missing / was quarantined by the cache layer.
nn::NetworkPtr load_net(const FamilySpec& spec, exp::ArtifactCache& cache,
                        const std::string& key) {
  auto state = cache.get_state(key);
  if (!state) return nullptr;
  // The build seed is irrelevant: load_state overwrites every parameter,
  // mask, and batch-norm buffer with the artifact's values.
  auto net = nn::build_network(spec.arch, spec.task, /*seed=*/0);
  net->load_state(*state);
  net->enforce_masks();
  if (sparse::mode() != sparse::Mode::kOff) net->set_sparse(true);
  return net;
}

}  // namespace

ModelRegistry::ModelRegistry(const FamilySpec& spec, exp::ArtifactCache& cache) : spec_(spec) {
  const obs::Span span("serve.registry_load");
  auto parent = load_net(spec_, cache, spec_.parent_key);
  if (!parent) {
    throw std::runtime_error("serve: parent artifact '" + spec_.parent_key +
                             "' is missing or corrupt — a family cannot be served without its "
                             "dense fallback");
  }
  Variant p;
  p.key = spec_.parent_key;
  p.ratio = parent->prune_ratio();
  p.flops = parent->flops();
  p.net = std::move(parent);
  variants_.push_back(std::move(p));

  std::vector<Variant> pruned;
  for (const std::string& key : spec_.variant_keys) {
    auto net = load_net(spec_, cache, key);
    if (!net) {
      // Quarantine (and the obs cache.corrupt_quarantined count) happened
      // inside get_state; here the family just shrinks by one rung.
      ++dropped_;
      continue;
    }
    Variant v;
    v.key = key;
    v.ratio = net->prune_ratio();
    v.flops = net->flops();
    v.net = std::move(net);
    pruned.push_back(std::move(v));
  }
  // Ratio-ascending ladder behind the parent; stable so equal-ratio variants
  // keep their declared order and the load is deterministic.
  std::stable_sort(pruned.begin(), pruned.end(),
                   [](const Variant& a, const Variant& b) { return a.ratio < b.ratio; });
  for (auto& v : pruned) variants_.push_back(std::move(v));
}

}  // namespace rp::serve
