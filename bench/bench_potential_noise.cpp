// Reproduces Figure 1 / Figure 28: the prune potential as a function of the
// ℓ∞ noise level injected into the test inputs. The paper's headline
// observation — the potential is high on nominal data and collapses as the
// noise level grows — appears here for all four pruning methods.

#include "common.hpp"

#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    // Figure 1 uses ResNet20; Figure 28 repeats the sweep for more nets.
    const std::vector<std::string> archs =
        runner.scale().paper ? std::vector<std::string>{"resnet8", "vgg11", "wrn"}
                             : std::vector<std::string>{"resnet8", "wrn"};
    bench::print_banner("Figure 1 / Figure 28: prune potential vs input noise level", runner,
                        archs);

    // eps is in [0,1] pixel units (image std ≈ 0.25): the top levels reach
    // the regime where the paper's Figure 1 shows the potential collapsing.
    const std::vector<double> noise_levels{0.0, 0.05, 0.1, 0.2, 0.3, 0.4};

    for (const auto& arch : archs) {
      std::vector<exp::Series> series;
      exp::Table table({"noise eps", "WT", "SiPP", "FT", "PFP"});
      std::vector<std::vector<std::string>> rows(noise_levels.size());
      for (size_t n = 0; n < noise_levels.size(); ++n) {
        rows[n].push_back(exp::fmt(noise_levels[n], 2));
      }

      for (core::PruneMethod m : core::kAllMethods) {
        std::vector<double> ys;
        for (size_t n = 0; n < noise_levels.size(); ++n) {
          auto ds = bench::noisy_test(runner, task, static_cast<float>(noise_levels[n]));
          const auto s =
              bench::potential(runner, arch, task, m, *ds, runner.scale().reps);
          ys.push_back(100.0 * s.mean);
          rows[n].push_back(exp::fmt_pm(100.0 * s.mean, 100.0 * s.stddev, 1));
        }
        series.push_back({core::to_string(m), std::move(ys)});
      }

      exp::print_chart("Figure 28 [" + arch + "]: prune potential (%) vs noise eps", "eps",
                       noise_levels, series);
      for (auto& row : rows) table.add_row(std::move(row));
      table.print();
    }

    std::printf("\npaper shape check: potential degrades with eps for most nets while the\n"
                "wide-and-shallow net (wrn) holds its potential far better (Appendix D.1).\n");
  });
}
