// Reproduces Figure 3 and Figures 12-15: cross-model confidence heatmaps on
// informative-pixel subsets found by greedy backward selection (BackSelect).
// Row g, column e: mean confidence of model e toward the true class on
// images reduced to the 10% of pixels most informative to model g.
// Models: the unpruned parent, pruned networks of increasing ratio, and a
// separately trained unpruned network.

#include "common.hpp"

#include "core/backselect.hpp"
#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Figure 3 + Figures 12-15: informative-feature heatmaps", runner,
                        {arch});
    const auto& s = runner.scale();

    core::BackSelectConfig bs;
    bs.chunk = s.backselect_chunk;

    const std::vector<core::PruneMethod> methods =
        s.paper ? std::vector<core::PruneMethod>(std::begin(core::kAllMethods),
                                                 std::end(core::kAllMethods))
                : std::vector<core::PruneMethod>{core::PruneMethod::WT, core::PruneMethod::FT};

    for (core::PruneMethod m : methods) {
      auto parent = runner.trained(arch, task, 0);
      auto separate = runner.separate(arch, task, 0);
      const auto family = runner.sweep(arch, task, m, 0);

      std::vector<nn::NetworkPtr> pruned;
      std::vector<core::ModelRef> models;
      models.push_back({"parent", parent.get()});
      for (const auto& c : family) {
        pruned.push_back(runner.instantiate(arch, task, c));
        models.push_back({"PR " + exp::fmt_pct(c.ratio, 0) + "%", pruned.back().get()});
      }
      models.push_back({"separate", separate.get()});

      auto run_heatmap = [&](const std::string& title, const data::Dataset& ds) {
        const Tensor matrix =
            core::informative_feature_matrix(models, ds, s.backselect_images, 0.10, bs);
        std::vector<std::string> headers{"features from \\ eval on"};
        for (const auto& ref : models) headers.push_back(ref.label);
        exp::Table table(std::move(headers));
        for (size_t g = 0; g < models.size(); ++g) {
          std::vector<std::string> row{models[g].label};
          for (size_t e = 0; e < models.size(); ++e) {
            row.push_back(exp::fmt(matrix.at(static_cast<int64_t>(g), static_cast<int64_t>(e)), 2));
          }
          table.add_row(std::move(row));
        }
        exp::print_header(title);
        table.print();
      };

      run_heatmap("Figure 12 [" + arch + ", " + core::to_string(m) +
                      "]: confidence on 10% informative pixels (nominal test data)",
                  *runner.test_set(task));
      // Figures 14/15: the same heatmap with features computed from o.o.d.
      // (corrupted) test data.
      run_heatmap("Figure 14 [" + arch + ", " + core::to_string(m) +
                      "]: confidence on informative pixels (corrupted test data)",
                  *bench::mixed_corrupted_test(runner, task, s.severity));
    }

    std::printf("\npaper shape check: parent features transfer to its pruned children (and\n"
                "vice versa) but NOT to the separately trained network, whose row/column\n"
                "carries visibly lower confidence; extreme prune ratios lose the shared\n"
                "decision process (Figure 3, PR 0.98 analog).\n");
  });
}
