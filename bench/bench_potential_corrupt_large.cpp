// Reproduces Figure 7 and Figures 35-37: per-corruption prune potential on
// the larger tasks — the ImageNet analog (classification, incl. the natural
// shift datasets CIFAR10.1/ObjectNet analogs) and the VOC-segmentation
// analog. The paper reports markedly higher variance across corruptions on
// these tasks than on CIFAR10.

#include "common.hpp"

#include "data/synth.hpp"
#include "nn/models.hpp"

using namespace rp;

namespace {

/// Natural-shift test set: same generator, drifted nuisance parameters.
data::DatasetPtr shifted_test(exp::Runner& runner, const nn::TaskSpec& task,
                              const data::GenParams& params, const std::string& name) {
  data::SynthConfig cfg;
  cfg.n = runner.scale().test_n;
  cfg.h = task.in_h;
  cfg.w = task.in_w;
  cfg.num_classes = task.num_classes;
  cfg.seed = seed_from_string((task.name + "/shift/" + name).c_str());
  cfg.params = params;
  cfg.name = name;
  return data::make_synth_classification(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    bench::print_banner(
        "Figure 7 + Figures 35-37: prune potential per corruption on the large tasks", runner,
        {"resnet_im", "segnet"});
    const int severity = runner.scale().severity;
    // Large-task sweeps are expensive; repetitions are a --paper feature.
    const int reps = runner.scale().paper ? runner.scale().reps : 1;

    // --- Figure 35: ImageNet-analog classification -----------------------------
    {
      const auto task = nn::synth_imagenet_task();
      const std::string arch = "resnet_im";
      exp::Table table({"distribution", "WT", "SiPP", "FT", "PFP"});

      auto add = [&](const std::string& label, const data::Dataset& ds) {
        std::vector<std::string> row{label};
        for (core::PruneMethod m : core::kAllMethods) {
          const auto s = bench::potential(runner, arch, task, m, ds, reps);
          row.push_back(exp::fmt_pm(100 * s.mean, 100 * s.stddev, 1));
        }
        table.add_row(std::move(row));
      };

      add("nominal", *runner.test_set(task));
      add("v2 (CIFAR10.1 analog)", *shifted_test(runner, task, data::v2_params(), "v2"));
      add("objectnet analog", *shifted_test(runner, task, data::objectnet_params(), "objectnet"));
      for (const auto& name : corrupt::all_names()) {
        add(name, *bench::corrupted_test(runner, task, name, severity));
      }
      exp::print_header("Figure 35 [resnet_im]: prune potential (%) per distribution");
      table.print();
    }

    // --- Figure 37: segmentation analog ----------------------------------------
    {
      const auto task = nn::synth_seg_task();
      const std::string arch = "segnet";
      exp::Table table({"distribution", "WT", "SiPP", "FT", "PFP"});
      auto add = [&](const std::string& label, const data::Dataset& ds) {
        std::vector<std::string> row{label};
        for (core::PruneMethod m : core::kAllMethods) {
          const auto s = bench::potential(runner, arch, task, m, ds, reps);
          row.push_back(exp::fmt_pm(100 * s.mean, 100 * s.stddev, 1));
        }
        table.add_row(std::move(row));
      };
      add("nominal", *runner.test_set(task));
      for (const auto& name : corrupt::all_names()) {
        add(name, *bench::corrupted_test(runner, task, name, severity));
      }
      exp::print_header("Figure 37 [segnet]: prune potential (%) per distribution (IoU)");
      table.print();
    }

    std::printf("\npaper shape check: the large classification task shows higher variance\n"
                "in potential across corruptions than the CIFAR analog (Figure 7), the\n"
                "natural-shift sets (v2/objectnet analogs) cut the potential without any\n"
                "pixel corruption, and the segmentation task's potential is lowest overall.\n");
  });
}
