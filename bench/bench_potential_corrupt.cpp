// Reproduces Figure 6b/6e and Figures 29-34: the prune potential of
// CIFAR-analog networks evaluated separately on every corruption family
// (severity 3 of 5), for weight pruning (WT, SiPP) and filter pruning
// (FT, PFP). The paper's key finding appears here: for hard corruptions the
// potential collapses — often to 0% — even though the nominal potential is
// high.

#include "common.hpp"

#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::vector<std::string> archs =
        runner.scale().paper
            ? nn::classification_archs()
            : std::vector<std::string>{"resnet8", "vgg11", "wrn"};
    bench::print_banner(
        "Figure 6b/6e + Figures 29-34: prune potential per corruption (severity 3)", runner,
        archs);
    const int severity = runner.scale().severity;
    const int reps = runner.scale().reps;

    for (const auto& arch : archs) {
      exp::Table table({"distribution", "category", "WT", "SiPP", "FT", "PFP"});

      auto add_distribution = [&](const std::string& label, const std::string& category,
                                  const data::Dataset& ds) {
        std::vector<std::string> row{label, category};
        for (core::PruneMethod m : core::kAllMethods) {
          const auto s = bench::potential(runner, arch, task, m, ds, reps);
          row.push_back(exp::fmt_pm(100.0 * s.mean, 100.0 * s.stddev, 1));
        }
        table.add_row(std::move(row));
      };

      add_distribution("nominal", "-", *runner.test_set(task));
      for (const auto& name : corrupt::all_names()) {
        auto ds = bench::corrupted_test(runner, task, name, severity);
        add_distribution(name, corrupt::get(name).category(), *ds);
      }

      exp::print_header("Figures 29-34 [" + arch + "]: prune potential (%) per distribution");
      table.print();
    }

    std::printf("\npaper shape check: nominal potential is the ceiling; noise-family\n"
                "corruptions (gauss/impulse/shot) collapse the potential toward 0%%, mild\n"
                "digital corruptions (jpeg) barely move it, and filter pruning (FT/PFP)\n"
                "sits below weight pruning (WT/SiPP) throughout.\n");
  });
}
