// Reproduces Figure 6a/6d: prune-accuracy curves of a small ResNet evaluated
// on a subset of corruptions, for weight pruning (WT) and filter pruning
// (FT). The curves under hard corruptions sit below and fall away from the
// nominal curve — the visual core of "Lost in Pruning".

#include "common.hpp"

#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Figure 6a/6d: prune-accuracy curves per corruption", runner, {arch});

    // The paper's panel shows nominal plus a representative subset: an easy
    // digital corruption, a blur, and hard noise corruptions.
    const std::vector<std::string> shown{"jpeg", "defocus", "speckle", "gauss"};
    const int severity = runner.scale().severity;

    for (core::PruneMethod m : {core::PruneMethod::WT, core::PruneMethod::FT}) {
      std::vector<double> xs;
      for (const auto& p : runner.curve_cached(arch, task, m, 0, *runner.test_set(task))) {
        xs.push_back(p.ratio);
      }

      std::vector<exp::Series> series;
      exp::Table table({"distribution", "dense acc", "acc @ checkpoints (increasing ratio)"});

      auto add = [&](const std::string& label, const data::Dataset& ds) {
        const double dense_acc = 1.0 - runner.dense_error(arch, task, 0, ds);
        const auto curve = runner.curve_cached(arch, task, m, 0, ds);
        std::vector<double> acc;
        std::string cells;
        for (const auto& p : curve) {
          acc.push_back(100.0 * (1.0 - p.error));
          cells += exp::fmt_pct(1.0 - p.error, 1) + " ";
        }
        series.push_back({label, std::move(acc)});
        table.add_row({label, exp::fmt_pct(dense_acc, 1), cells});
      };

      add("nominal", *runner.test_set(task));
      for (const auto& name : shown) {
        add(name, *bench::corrupted_test(runner, task, name, severity));
      }

      exp::print_chart("Figure 6 [" + core::to_string(m) +
                           "-pruned " + arch + "]: accuracy (%) vs prune ratio",
                       "ratio", xs, series);
      table.print();
    }

    std::printf("\npaper shape check: the jpeg curve tracks the nominal curve; speckle and\n"
                "gauss sit well below it and decay faster with the prune ratio, and the\n"
                "FT curves degrade earlier than the WT curves.\n");
  });
}
