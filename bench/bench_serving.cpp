// Load-generator benchmark for the rp::serve batched inference engine
// (google-benchmark): closed-loop client threads drive bursts of
// single-sample requests through a resnet8 prune-ratio family and the
// committed record captures throughput (QPS) and per-request latency
// percentiles (p50/p99), swept over
//
//   batch window   (RP_SERVE_WAIT_US: 0 = flush immediately, up to 5ms)
//   queue depth    (RP_SERVE_QUEUE: 8 forces admission-control rejects
//                   under the burst load, 64 absorbs it)
//   variant count  (1 = every covered tag shares one pruned model,
//                   3 = mixed tags split each flush across the ladder)
//
// Results land in BENCH_serving.json (median-of-5, Release-tagged) for
// cross-PR trajectory tracking; scripts/check.sh gates on the record.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>  // rp-lint: allow(R2) closed-loop load-generator clients are the workload
#include <vector>

#include "common.hpp"
#include "core/pruner.hpp"
#include "nn/models.hpp"
#include "serve/engine.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace rp;

constexpr uint64_t kSeed = 21;
constexpr double kRatios[] = {0.3, 0.6, 0.8};

/// The bench keeps its family in an own pid-unique cache directory so a
/// concurrently running experiment sweep can never collide with it (or pull
/// its artifacts through the quarantine path mid-run).
std::string bench_cache_dir() {
  return (std::filesystem::temp_directory_path() /
          ("rp_cache_serving_" + std::to_string(::getpid())))
      .string();
}

std::string variant_key(double ratio) {
  return "serving/p" + std::to_string(static_cast<int>(ratio * 100));
}

/// Family spec for `variant_count` pruned variants. The artifacts are
/// published on first use (keyed on the parent) and reused by every later
/// benchmark run in the process; training is irrelevant to serving cost, so
/// the nets stay untrained.
serve::FamilySpec family_spec(exp::ArtifactCache& cache, int variant_count) {
  serve::FamilySpec spec;
  spec.arch = "resnet8";
  spec.task = nn::synth_cifar_task();
  spec.parent_key = "serving/parent";
  if (!cache.has(spec.parent_key)) {
    const auto parent = nn::build_network(spec.arch, spec.task, kSeed);
    for (const double ratio : kRatios) {
      auto net = nn::build_network(spec.arch, spec.task, kSeed);
      net->load_state(parent->state());
      core::prune_to_ratio(*net, core::PruneMethod::WT, ratio);
      cache.put_state(variant_key(ratio), net->state());
    }
    cache.put_state(spec.parent_key, parent->state());  // published last: marks the family complete
  }
  for (int i = 0; i < variant_count; ++i) spec.variant_keys.push_back(variant_key(kRatios[i]));
  return spec;
}

/// One load-generation run: kClients closed-loop clients, each submitting
/// kBurst-ticket bursts (retrying rejects) and waiting the burst out, for
/// kBursts rounds per benchmark iteration. Per-request latency is
/// submit-to-response wall time — exactly what a caller of infer() sees,
/// including the batching window and any admission-control retries.
void BM_ServeLoad(benchmark::State& state) {
  const int64_t wait_us = state.range(0);
  const int queue_depth = static_cast<int>(state.range(1));
  const int variant_count = static_cast<int>(state.range(2));
  constexpr int kClients = 4;
  constexpr int kBurst = 4;
  constexpr int kBursts = 8;

  exp::ArtifactCache cache(bench_cache_dir());
  const serve::ModelRegistry registry(family_spec(cache, variant_count), cache);
  serve::Router router(registry);
  core::PotentialEvidence high;  // covers the whole ladder -> cheapest variant
  high.train = 0.95;
  high.test_average = 0.9;
  high.test_minimum = 0.95;
  router.set_evidence("nominal", high);
  core::PotentialEvidence mid = high;  // covers p60 but not p80
  mid.test_minimum = 0.65;
  router.set_evidence("shifted", mid);
  // Third tag stays unregistered: "unknown" falls back to the dense parent.

  serve::EngineConfig cfg;
  cfg.max_batch = 16;
  cfg.queue_depth = queue_depth;
  cfg.max_wait_us = wait_us;
  serve::Engine engine(registry, router, cfg);
  engine.start();

  const nn::TaskSpec& task = registry.task();
  Rng rng(kSeed);
  std::vector<Tensor> samples;  // one image per client: threads never share a tensor
  samples.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    samples.push_back(Tensor::randn(Shape{task.in_c, task.in_h, task.in_w}, rng));
  }
  const char* kTags[] = {"nominal", "shifted", "unknown"};

  std::vector<double> lat_us;
  int64_t requests = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> lat(kClients);
    std::vector<std::thread> clients;  // rp-lint: allow(R2) the concurrent load is the thing being measured
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {  // rp-lint: allow(R2) see above
        lat[c].reserve(kBurst * kBursts);
        Tensor logits;
        std::vector<serve::Engine::Ticket> tickets(kBurst);
        std::vector<std::chrono::steady_clock::time_point> sent(kBurst);
        for (int b = 0; b < kBursts; ++b) {
          for (int i = 0; i < kBurst; ++i) {
            const char* tag = kTags[(c + i) % 3];
            sent[static_cast<size_t>(i)] = std::chrono::steady_clock::now();  // rp-lint: allow(R1) request latency is the bench's output
            for (;;) {
              const auto t = engine.submit(samples[static_cast<size_t>(c)], tag);
              if (t) {
                tickets[static_cast<size_t>(i)] = *t;
                break;
              }
              // Rejected: a slot frees only after some client's wait_into, so
              // spinning here would starve the dispatcher (and everyone else)
              // on small machines — yield instead of hammering the lock.
              std::this_thread::yield();  // rp-lint: allow(R2) load-generator backoff
            }
          }
          for (int i = 0; i < kBurst; ++i) {
            engine.wait_into(tickets[static_cast<size_t>(i)], &logits);
            const auto done = std::chrono::steady_clock::now();  // rp-lint: allow(R1) see above
            lat[c].push_back(
                std::chrono::duration<double, std::micro>(done - sent[static_cast<size_t>(i)])
                    .count());
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    for (const auto& v : lat) lat_us.insert(lat_us.end(), v.begin(), v.end());
    requests += kClients * kBurst * kBursts;
  }
  engine.stop();

  std::sort(lat_us.begin(), lat_us.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<size_t>(p * static_cast<double>(lat_us.size() - 1) + 0.5);
    return lat_us[std::min(idx, lat_us.size() - 1)];
  };
  state.counters["QPS"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = pct(0.50);
  state.counters["p99_us"] = pct(0.99);
  state.counters["rejects"] = static_cast<double>(engine.stats().rejects);
  state.counters["batches"] = static_cast<double>(engine.stats().batches);
  state.SetItemsProcessed(requests);
  state.SetLabel("window " + std::to_string(wait_us) + "us, depth " +
                 std::to_string(queue_depth) + ", " + std::to_string(variant_count) +
                 " pruned variant(s)");
}
// UseRealTime: QPS must come from wall-clock — the clients spend most of
// their time blocked in wait_into, not burning main-thread CPU.
BENCHMARK(BM_ServeLoad)
    ->ArgsProduct({{0, 500, 5000}, {8, 64}, {1, 3}})
    ->Iterations(3)
    ->UseRealTime();

}  // namespace

/// Shared micro-bench main (bench/common.hpp): median-of-5 repetitions,
/// aggregates-only reporting, Release-tagged JSON in BENCH_serving.json.
int main(int argc, char** argv) {
  const int rc = rp::bench::run_micro_bench_main(argc, argv, "BENCH_serving.json");
  std::filesystem::remove_all(bench_cache_dir());
  return rc;
}
