// Reproduces Figure 10 / Table 6: prune-accuracy results on the larger,
// harder ImageNet-analog task (24x24, 20 classes), for a small and a large
// residual network. As in the paper, structured pruning achieves much lower
// commensurate prune ratios on this task than on the CIFAR analog.

#include "common.hpp"

#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_imagenet_task();
    // resnet_im plays ResNet18, resnet_im_l plays ResNet101. The large net is
    // a --paper feature (its sweeps dominate fast-profile wall-clock).
    const std::vector<std::string> archs =
        runner.scale().paper ? std::vector<std::string>{"resnet_im", "resnet_im_l"}
                             : std::vector<std::string>{"resnet_im"};
    bench::print_banner("Figure 10 + Table 6: pruning on the ImageNet-analog task", runner,
                        archs);

    exp::Table table({"model", "orig err", "method", "dErr", "PR", "FR"});

    for (const auto& arch : archs) {
      const std::vector<core::PruneMethod> methods(std::begin(core::kAllMethods),
                                                   std::end(core::kAllMethods));

      auto dense = runner.trained(arch, task, 0);
      const double dense_error = runner.dense_error(arch, task, 0, *runner.test_set(task));
      const int64_t dense_flops = dense->flops();

      std::vector<double> xs;
      std::vector<exp::Series> series;
      for (core::PruneMethod m : methods) {
        const auto family = runner.sweep(arch, task, m, 0);
        const auto curve = runner.curve_cached(arch, task, m, 0, *runner.test_set(task));
        if (xs.empty()) {
          for (const auto& p : curve) xs.push_back(p.ratio);
        }
        std::vector<double> acc;
        for (const auto& p : curve) acc.push_back(100.0 * (1.0 - p.error));
        series.push_back({core::to_string(m), std::move(acc)});

        // Table 6 protocol: largest ratio within delta, else closest error.
        size_t pick = 0;
        bool found = false;
        for (size_t i = 0; i < curve.size(); ++i) {
          if (curve[i].error - dense_error <= bench::kDelta) {
            if (!found || curve[i].ratio > curve[pick].ratio) pick = i;
            found = true;
          }
        }
        if (!found) {
          for (size_t i = 1; i < curve.size(); ++i) {
            if (curve[i].error < curve[pick].error) pick = i;
          }
        }
        const double fr = bench::flop_reduction(runner, arch, task, family[pick], dense_flops);
        table.add_row({arch, exp::fmt_pct(dense_error, 2), core::to_string(m),
                       (curve[pick].error >= dense_error ? "+" : "") +
                           exp::fmt_pct(curve[pick].error - dense_error, 2),
                       exp::fmt_pct(curve[pick].ratio, 2), exp::fmt_pct(fr, 2)});
      }
      exp::print_chart("Figure 10 [" + arch + "]: accuracy (%) vs prune ratio", "ratio", xs,
                       series);
    }

    exp::print_header("Table 6: PR / FR at commensurate accuracy (ImageNet analog)");
    table.print();
    std::printf("\npaper shape check: the harder 20-class task supports lower structured\n"
                "prune ratios than the CIFAR analog (Table 4), mirroring ResNet18's\n"
                "FT PR of just 13.7%% in the paper; weight pruning stays high.\n");
  });
}
