// Reproduces Figure 11 / Table 8: pruning the dense-prediction network on
// the VOC-segmentation analog (per-pixel labels, mean-IoU metric). As in the
// paper's DeeplabV3 results, the dense task tolerates far less pruning than
// classification, and filter thresholding collapses almost immediately.

#include "common.hpp"

#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_seg_task();
    const std::string arch = "segnet";
    bench::print_banner("Figure 11 + Table 8: pruning the segmentation analog (mean IoU)",
                        runner, {arch});

    auto dense = runner.trained(arch, task, 0);
    const double dense_error = runner.dense_error(arch, task, 0, *runner.test_set(task));
    const int64_t dense_flops = dense->flops();
    std::printf("dense segnet: IoU error %s%%, %lld params\n",
                exp::fmt_pct(dense_error, 2).c_str(),
                static_cast<long long>(dense->param_count()));

    exp::Table table({"method", "dErr(IoU)", "PR", "FR"});
    std::vector<double> xs;
    std::vector<exp::Series> series;

    for (core::PruneMethod m : core::kAllMethods) {
      const auto family = runner.sweep(arch, task, m, 0);
      const auto curve = runner.curve_cached(arch, task, m, 0, *runner.test_set(task));
      if (xs.empty()) {
        for (const auto& p : curve) xs.push_back(p.ratio);
      }
      std::vector<double> iou;
      for (const auto& p : curve) iou.push_back(100.0 * (1.0 - p.error));
      series.push_back({core::to_string(m), std::move(iou)});

      size_t pick = 0;
      bool found = false;
      for (size_t i = 0; i < curve.size(); ++i) {
        if (curve[i].error - dense_error <= bench::kDelta) {
          if (!found || curve[i].ratio > curve[pick].ratio) pick = i;
          found = true;
        }
      }
      if (!found) {
        // Table 8 convention: DeeplabV3's FT row reports PR = 0 when no
        // pruned checkpoint is commensurate.
        table.add_row({core::to_string(m), "+0.00", "0.00", "0.00"});
        continue;
      }
      const double fr = bench::flop_reduction(runner, arch, task, family[pick], dense_flops);
      table.add_row({core::to_string(m),
                     (curve[pick].error >= dense_error ? "+" : "") +
                         exp::fmt_pct(curve[pick].error - dense_error, 2),
                     exp::fmt_pct(curve[pick].ratio, 2), exp::fmt_pct(fr, 2)});
    }

    exp::print_chart("Figure 11 [segnet]: mean IoU (%) vs prune ratio", "ratio", xs, series);
    exp::print_header("Table 8: PR / FR at commensurate IoU (segmentation analog)");
    table.print();
    std::printf("\npaper shape check: the dense-prediction task has by far the lowest prune\n"
                "potential of all tasks; structured methods saturate earliest (the paper's\n"
                "FT row is exactly 0.00).\n");
  });
}
