// Reproduces Figure 2 / Figure 9 (prune-accuracy curves of every CIFAR-analog
// architecture under all four pruning methods) and Table 4 (prune ratio PR
// and FLOP reduction FR at commensurate accuracy, within δ = 0.5%).

#include "common.hpp"

#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

namespace {

struct MethodResult {
  double err_delta = 0.0;  ///< error difference to dense at the reported point
  double pr = 0.0;         ///< prune ratio
  double fr = 0.0;         ///< FLOP reduction
};

/// Table 4 protocol: the largest-ratio checkpoint within δ of the dense
/// error, or the lowest-error checkpoint when none qualifies.
MethodResult commensurate_point(exp::Runner& runner, const std::string& arch,
                                const nn::TaskSpec& task, core::PruneMethod method,
                                double dense_error, int64_t dense_flops) {
  const auto family = runner.sweep(arch, task, method, 0);
  const auto curve = runner.curve_cached(arch, task, method, 0, *runner.test_set(task));

  size_t pick = 0;
  bool found = false;
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].error - dense_error <= bench::kDelta) {
      if (!found || curve[i].ratio > curve[pick].ratio) pick = i;
      found = true;
    }
  }
  if (!found) {
    for (size_t i = 1; i < curve.size(); ++i) {
      if (curve[i].error < curve[pick].error) pick = i;
    }
  }
  MethodResult r;
  r.err_delta = curve[pick].error - dense_error;
  r.pr = curve[pick].ratio;
  r.fr = bench::flop_reduction(runner, arch, task, family[pick], dense_flops);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const auto archs = nn::classification_archs();
    bench::print_banner(
        "Figure 2 / Figure 9 + Table 4: prune-accuracy on the CIFAR-analog task", runner, archs);

    exp::Table table({"model", "orig err", "WT dErr", "WT PR", "WT FR", "SiPP dErr", "SiPP PR",
                      "SiPP FR", "FT dErr", "FT PR", "FT FR", "PFP dErr", "PFP PR", "PFP FR"});

    for (const auto& arch : archs) {
      auto dense = runner.trained(arch, task, 0);
      const double dense_error = runner.dense_error(arch, task, 0, *runner.test_set(task));
      const int64_t dense_flops = dense->flops();

      // Figure 2/9: accuracy difference to the dense network per target ratio.
      std::vector<double> xs;
      std::vector<exp::Series> series;
      for (core::PruneMethod m : core::kAllMethods) {
        const auto curve = runner.curve_cached(arch, task, m, 0, *runner.test_set(task));
        if (xs.empty()) {
          for (const auto& p : curve) xs.push_back(p.ratio);
        }
        std::vector<double> dacc;
        for (const auto& p : curve) dacc.push_back(100.0 * (dense_error - p.error));
        series.push_back({core::to_string(m), std::move(dacc)});
      }
      exp::print_chart("Figure 9 [" + arch + "]: accuracy delta to dense (%) vs prune ratio",
                       "ratio", xs, series);

      // Table 4 row.
      std::vector<std::string> row{arch, exp::fmt_pct(dense_error, 2)};
      for (core::PruneMethod m : core::kAllMethods) {
        const auto r = commensurate_point(runner, arch, task, m, dense_error, dense_flops);
        row.push_back((r.err_delta >= 0 ? "+" : "") + exp::fmt_pct(r.err_delta, 2));
        row.push_back(exp::fmt_pct(r.pr, 2));
        row.push_back(exp::fmt_pct(r.fr, 2));
      }
      table.add_row(std::move(row));
    }

    exp::print_header("Table 4: PR / FR at commensurate accuracy (all values %)");
    table.print();
    std::printf("\npaper shape check: unstructured (WT/SiPP) reaches much higher PR than\n"
                "structured (FT/PFP); structured FR approaches its PR; deeper/wider nets\n"
                "(resnet20, wrn) tolerate higher PR than small/dense ones.\n");
  });
}
