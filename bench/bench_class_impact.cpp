// Extension experiment: per-class impact of pruning (Hooker et al. 2019,
// "Selective Brain Damage", cited by the paper's related work). Even when
// the aggregate accuracy is commensurate, a few classes absorb most of the
// damage — and distribution shift widens the spread.

#include "common.hpp"

#include "core/class_impact.hpp"
#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Extension: per-class impact of pruning (selective brain damage)",
                        runner, {arch});

    auto dense = runner.trained(arch, task, 0);

    for (core::PruneMethod m : {core::PruneMethod::WT, core::PruneMethod::FT}) {
      const auto family = runner.sweep(arch, task, m, 0);
      auto pruned = runner.instantiate(arch, task, family[family.size() / 2]);

      exp::Table table({"distribution", "class", "dense acc", "pruned acc", "impact"});
      double nominal_spread = 0.0, shifted_spread = 0.0;

      auto analyze = [&](const std::string& label, const data::Dataset& ds, double& spread) {
        const auto impacts = core::class_impact(*dense, *pruned, ds);
        spread = core::impact_spread(impacts);
        // Report the two most- and the least-damaged class.
        for (size_t k : {size_t{0}, size_t{1}, impacts.size() - 1}) {
          const auto& ci = impacts[k];
          table.add_row({label, std::to_string(ci.cls), exp::fmt_pct(ci.dense_accuracy, 1),
                         exp::fmt_pct(ci.pruned_accuracy, 1), exp::fmt_pct(ci.impact, 1)});
        }
      };

      analyze("nominal", *runner.test_set(task), nominal_spread);
      analyze("gauss/3", *bench::corrupted_test(runner, task, "gauss", runner.scale().severity),
              shifted_spread);

      exp::print_header("Per-class impact [" + arch + ", " + core::to_string(m) + " @ " +
                        exp::fmt_pct(pruned->prune_ratio(), 0) + "% sparsity]");
      table.print();
      std::printf("impact spread (max - min over classes): nominal %s pts, gauss/3 %s pts\n",
                  exp::fmt_pct(nominal_spread, 1).c_str(),
                  exp::fmt_pct(shifted_spread, 1).c_str());
    }

    std::printf("\nexpected shape: pruning damage concentrates on a few classes (nonzero\n"
                "spread) even at commensurate aggregate accuracy, and the spread widens\n"
                "under distribution shift — per-class evaluation belongs in any pruning\n"
                "deployment checklist (Section 7).\n");
  });
}
