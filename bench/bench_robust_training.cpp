// Reproduces Section 6: Figure 8 (prune-accuracy curves and prune potential
// with robust (re-)training), Figures 49-54 (potential per corruption, train
// vs test side of the Table 11 split), Figures 55-60 (excess error under
// robust training), and Tables 12/13 (average/minimum potential over both
// distributions).
//
// Robust training bakes a fixed subset of corruptions (the "train
// distribution", Table 11) into every (re-)training epoch's augmentation
// pipeline; the held-out corruptions form the test distribution.

#include "common.hpp"

#include "core/robust.hpp"
#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::vector<std::string> archs =
        runner.scale().paper ? std::vector<std::string>{"resnet8", "vgg11", "wrn"}
                             : std::vector<std::string>{"resnet8"};
    bench::print_banner("Figure 8 + Figures 49-60 + Tables 12/13: robust (re-)training",
                        runner, archs);

    const auto split = core::paper_split();
    const auto augment = core::robust_augment(split);
    const std::string tag = "robust";
    // Robust sweeps double the training bill; repetitions are a --paper
    // feature.
    const int reps = runner.scale().paper ? runner.scale().reps : 1;

    std::printf("train-side corruptions: ");
    for (const auto& n : split.train) std::printf("%s ", n.c_str());
    std::printf("\ntest-side corruptions:  ");
    for (const auto& n : split.test) std::printf("%s ", n.c_str());
    std::printf("\n");

    exp::Table summary({"model", "method", "train dist (avg)", "train dist (min)",
                        "test dist (avg)", "test dist (min)"});

    for (const auto& arch : archs) {
      // --- Figure 8a: prune-accuracy curves for test-side corruptions ---------
      {
        std::vector<double> xs;
        std::vector<exp::Series> series;
        for (const std::string label : {"nominal", "gauss", "fog", "jpeg"}) {
          data::DatasetPtr ds = (label == "nominal")
                                    ? runner.test_set(task)
                                    : bench::corrupted_test(runner, task, label, split.severity);
          const auto curve =
              runner.curve_cached(arch, task, core::PruneMethod::WT, 0, *ds, tag, augment);
          if (xs.empty()) {
            for (const auto& p : curve) xs.push_back(p.ratio);
          }
          std::vector<double> acc;
          for (const auto& p : curve) acc.push_back(100.0 * (1.0 - p.error));
          series.push_back({label, std::move(acc)});
        }
        exp::print_chart("Figure 8a [robust WT-pruned " + arch +
                             "]: accuracy (%) vs prune ratio (test-side corruptions)",
                         "ratio", xs, series);
      }

      // --- Figures 49-54 + Tables 12/13 ---------------------------------------
      for (core::PruneMethod m : core::kAllMethods) {
        exp::Table table({"distribution", "side", "potential (%)"});
        std::vector<double> train_avg(static_cast<size_t>(reps), 0.0),
            train_min(static_cast<size_t>(reps), 1.0), test_avg(static_cast<size_t>(reps), 0.0),
            test_min(static_cast<size_t>(reps), 1.0);

        auto eval_side = [&](const std::vector<std::string>& names, const char* side,
                             std::vector<double>& avg, std::vector<double>& mn) {
          for (const auto& name : names) {
            auto ds = bench::corrupted_test(runner, task, name, split.severity);
            std::vector<double> per_rep;
            for (int rep = 0; rep < reps; ++rep) {
              const double p =
                  bench::potential_one_rep(runner, arch, task, m, rep, *ds, tag, augment);
              per_rep.push_back(p);
              avg[static_cast<size_t>(rep)] += p / static_cast<double>(names.size());
              mn[static_cast<size_t>(rep)] = std::min(mn[static_cast<size_t>(rep)], p);
            }
            const auto s = exp::summarize(per_rep);
            table.add_row({name, side, exp::fmt_pm(100 * s.mean, 100 * s.stddev, 1)});
          }
        };
        eval_side(split.train, "train", train_avg, train_min);
        eval_side(split.test, "test", test_avg, test_min);

        exp::print_header("Figures 49-54 [" + arch + ", " + core::to_string(m) +
                          ", robust]: potential per corruption");
        table.print();

        summary.add_row({arch, core::to_string(m),
                         exp::fmt_pm(100 * exp::summarize(train_avg).mean,
                                     100 * exp::summarize(train_avg).stddev, 1),
                         exp::fmt_pm(100 * exp::summarize(train_min).mean,
                                     100 * exp::summarize(train_min).stddev, 1),
                         exp::fmt_pm(100 * exp::summarize(test_avg).mean,
                                     100 * exp::summarize(test_avg).stddev, 1),
                         exp::fmt_pm(100 * exp::summarize(test_min).mean,
                                     100 * exp::summarize(test_min).stddev, 1)});
      }

      // --- Figures 55-60: excess error under robust training ------------------
      {
        auto shifted = bench::mixed_corrupted_test(runner, task, split.severity);
        exp::Table table({"method", "OLS slope (% / unit ratio)", "95% CI"});
        for (core::PruneMethod m : core::kAllMethods) {
          std::vector<double> ratios, deltas;
          for (int rep = 0; rep < reps; ++rep) {
            const double dnom =
                runner.dense_error(arch, task, rep, *runner.test_set(task), tag, augment);
            const double dshift = runner.dense_error(arch, task, rep, *shifted, tag, augment);
            const auto nom =
                runner.curve_cached(arch, task, m, rep, *runner.test_set(task), tag, augment);
            const auto shift = runner.curve_cached(arch, task, m, rep, *shifted, tag, augment);
            for (size_t i = 0; i < nom.size(); ++i) {
              ratios.push_back(nom[i].ratio);
              deltas.push_back(100.0 * core::excess_error_difference(shift[i].error,
                                                                     nom[i].error, dshift, dnom));
            }
          }
          const double slope = exp::ols_slope_origin(ratios, deltas);
          const auto ci = exp::bootstrap_slope_ci(ratios, deltas, runner.scale().bootstrap_iters,
                                                  0.95, seed_from_string((arch + tag).c_str()));
          table.add_row({core::to_string(m), exp::fmt(slope, 2),
                         "[" + exp::fmt(ci.lo, 2) + ", " + exp::fmt(ci.hi, 2) + "]"});
        }
        exp::print_header("Figures 55-60 [" + arch + ", robust]: excess-error slopes");
        table.print();
      }
    }

    exp::print_header("Tables 12/13: avg/min potential with robust training (%)");
    summary.print();
    std::printf("\npaper shape check: relative to the nominal-training results (Tables\n"
                "9/10), robust training lifts the test-side average potential close to the\n"
                "train-side value and raises the minimum above 0%% for most methods; the\n"
                "excess-error slopes shrink toward 0 (Figures 55-60) but variance remains.\n");
  });
}
