#pragma once

// Shared plumbing for the experiment benches. Every bench binary reproduces
// one or more tables/figures of the paper: it builds (or loads from the
// artifact cache) the trained and pruned models it needs, evaluates them on
// the relevant distributions, and prints the same rows/series the paper
// reports. Run with --paper to scale toward the paper's protocol.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/prune_potential.hpp"
#include "corrupt/corruption.hpp"
#include "exp/runner.hpp"
#include "exp/table.hpp"
#include "obs/obs.hpp"

namespace rp::bench {

/// δ = 0.5%, the margin used for every prune-potential evaluation in the
/// paper (Section 5.1).
inline constexpr double kDelta = 0.005;

/// Corrupted test set for a task (baked deterministically from the runner's
/// nominal test set).
inline data::DatasetPtr corrupted_test(exp::Runner& runner, const nn::TaskSpec& task,
                                       const std::string& corruption, int severity) {
  const auto seed =
      seed_from_string((task.name + "/corrupt/" + corruption).c_str()) + severity;
  return corrupt::make_corrupted(*runner.test_set(task), corruption, severity, seed);
}

/// Test set with a uniformly random corruption (severity fixed) applied per
/// image — evaluates the paper's "average over all corruptions" test
/// distribution with a single dataset pass.
inline data::DatasetPtr mixed_corrupted_test(exp::Runner& runner, const nn::TaskSpec& task,
                                             int severity) {
  const auto names = corrupt::all_names();
  data::ImageTransform pick = [names, severity](const Tensor& image, Rng& rng) {
    const auto& name = names[static_cast<size_t>(rng.randint(static_cast<int64_t>(names.size())))];
    return corrupt::get(name).apply(image, severity, rng);
  };
  Rng rng(seed_from_string((task.name + "/mixed-corrupt").c_str()) +
          static_cast<uint64_t>(severity));
  return data::bake(*runner.test_set(task), pick, rng, "all-corruptions/avg");
}

/// ℓ∞-noisy test set.
inline data::DatasetPtr noisy_test(exp::Runner& runner, const nn::TaskSpec& task, float eps) {
  const auto seed = seed_from_string((task.name + "/noise").c_str()) +
                    static_cast<uint64_t>(1000 * eps);
  return corrupt::make_noisy(*runner.test_set(task), eps, seed);
}

/// One repetition's prune potential of (arch, method) on `eval_ds`:
/// evaluates the dense parent and every checkpoint on the dataset and applies
/// Definition 1 with margin δ.
inline double potential_one_rep(exp::Runner& runner, const std::string& arch,
                                const nn::TaskSpec& task, core::PruneMethod method, int rep,
                                const data::Dataset& eval_ds, const std::string& tag = "",
                                const data::ImageTransform& extra_augment = {}) {
  const double base_error = runner.dense_error(arch, task, rep, eval_ds, tag, extra_augment);
  const auto curve = runner.curve_cached(arch, task, method, rep, eval_ds, tag, extra_augment);
  return core::prune_potential(curve, base_error, kDelta);
}

/// Prune potential over all repetitions, as mean ± std (the paper's
/// error-bar protocol).
inline exp::Summary potential(exp::Runner& runner, const std::string& arch,
                              const nn::TaskSpec& task, core::PruneMethod method,
                              const data::Dataset& eval_ds, int reps,
                              const std::string& tag = "",
                              const data::ImageTransform& extra_augment = {}) {
  std::vector<double> values;
  for (int rep = 0; rep < reps; ++rep) {
    values.push_back(
        potential_one_rep(runner, arch, task, method, rep, eval_ds, tag, extra_augment));
  }
  return exp::summarize(values);
}

/// Prints the experiment banner: scale profile plus the per-arch training
/// recipe (the paper's Table 3/5/7 analog).
inline void print_banner(const std::string& what, const exp::Runner& runner,
                         const std::vector<std::string>& archs) {
  const auto& s = runner.scale();
  exp::print_header(what);
  std::printf("profile: %s | reps %d | train %lld / test %lld | epochs %d (+%d/cycle) | "
              "cycles %d (keep %.2f) | severity %d\n",
              s.paper ? "paper" : "fast", s.reps, static_cast<long long>(s.train_n),
              static_cast<long long>(s.test_n), s.epochs, s.retrain_epochs, s.cycles,
              s.keep_per_cycle, s.severity);
  exp::Table t({"arch", "lr", "schedule", "momentum", "nesterov", "weight decay", "batch"});
  for (const auto& arch : archs) {
    const auto cfg = runner.train_config(arch, 0);
    std::string sched;
    if (cfg.schedule.kind == nn::LrSchedule::Kind::Poly) {
      sched = "poly(" + exp::fmt(cfg.schedule.poly_power, 1) + ")";
    } else {
      sched = "step x" + exp::fmt(cfg.schedule.gamma, 1) + " @{";
      for (size_t i = 0; i < cfg.schedule.milestones.size(); ++i) {
        sched += (i ? "," : "") + std::to_string(cfg.schedule.milestones[i]);
      }
      sched += "}";
    }
    t.add_row({arch, exp::fmt(cfg.schedule.base_lr, 3), sched, exp::fmt(cfg.sgd.momentum, 1),
               cfg.sgd.nesterov ? "yes" : "no", exp::fmt(cfg.sgd.weight_decay, 4),
               std::to_string(cfg.batch_size)});
  }
  t.print();
}

/// Mask-aware FLOP-reduction ratio of a checkpoint vs the dense parent.
inline double flop_reduction(exp::Runner& runner, const std::string& arch,
                             const nn::TaskSpec& task, const exp::Checkpoint& c,
                             int64_t dense_flops) {
  auto net = runner.instantiate(arch, task, c);
  return 1.0 - static_cast<double>(net->flops()) / static_cast<double>(dense_flops);
}

/// Standard bench main wrapper: parses scale args, runs `body` under a
/// top-level trace span, and flushes observability output (the RP_TRACE
/// chrome://tracing file plus the counter / per-phase timer summary) before
/// returning — every bench gets spans and the summary for free. Reports
/// errors with a non-zero exit.
template <typename Body>
int run_bench(int argc, char** argv, const Body& body) {
  try {
    exp::Runner runner(exp::scale_from_args(argc, argv));
    {
      const obs::Span span("bench.body");
      body(runner);
    }
    obs::finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    obs::finish();
    return 1;
  }
}

}  // namespace rp::bench

// google-benchmark integration — visible only to TUs that include
// <benchmark/benchmark.h> before this header, so the table/figure benches
// (plain binaries) never grow a dependency on the benchmark library.
#ifdef BENCHMARK_BENCHMARK_H_
namespace rp::bench {

/// Shared main for micro-benchmark binaries: like BENCHMARK_MAIN(), but
/// defaults
///   --benchmark_out=<default_out> --benchmark_out_format=json
///   --benchmark_repetitions=5 --benchmark_report_aggregates_only=true
/// so every timing in the committed record is a median-of-5 (plus mean/
/// stddev/cv aggregates), robust to one-off scheduler noise, and every run
/// leaves a machine-readable perf record for cross-PR trajectory tracking.
/// Explicit command-line flags win over all of these defaults.
inline int run_micro_bench_main(int argc, char** argv, const char* default_out) {
  // Provenance: a debug-build timing is not a perf record. Tag every JSON
  // output with the build type so committed records are auditable, and warn
  // loudly when assertions are compiled in — numbers from such a run must
  // never be committed (scripts/check.sh enforces Release for the bench
  // gate).
#ifdef NDEBUG
  benchmark::AddCustomContext("rp_build_type", "release");
#else
  benchmark::AddCustomContext("rp_build_type", "debug");
  std::fprintf(stderr,
               "\n*** rp bench: built WITHOUT NDEBUG (assertions on) — timings are "
               "meaningless for the committed perf record; rebuild with "
               "-DCMAKE_BUILD_TYPE=Release ***\n\n");
#endif
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::string rep_flag = "--benchmark_repetitions=5";
  std::string agg_flag = "--benchmark_report_aggregates_only=true";
  bool has_out = false;
  bool has_rep = false;
  bool has_agg = false;
  for (int i = 1; i < argc; ++i) {
    has_out |= std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    has_rep |= std::strncmp(argv[i], "--benchmark_repetitions", 23) == 0;
    has_agg |= std::strncmp(argv[i], "--benchmark_report_aggregates_only", 34) == 0;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  if (!has_rep) args.push_back(rep_flag.data());
  if (!has_agg) args.push_back(agg_flag.data());
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace rp::bench
#endif  // BENCHMARK_BENCHMARK_H_
