// Extension experiment: adversarial robustness of pruned networks (the
// paper's Section 2 "Robustness" discussion and Section 6.2's prediction
// that adversarial inputs show the most significant pruned-vs-dense
// trade-offs). Measures FGSM/PGD accuracy of the dense parent and pruned
// checkpoints, and the adversarial prune potential.

#include "common.hpp"

#include "core/adversarial.hpp"
#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Extension: adversarial robustness of pruned networks", runner, {arch});
    const int64_t n_images = runner.scale().paper ? 128 : 64;
    const std::vector<double> eps_levels{0.0, 0.02, 0.05, 0.1, 0.2};

    for (core::PruneMethod m : {core::PruneMethod::WT, core::PruneMethod::FT}) {
      auto dense = runner.trained(arch, task, 0);
      const auto family = runner.sweep(arch, task, m, 0);

      exp::Table table(
          {"model", "attack", "eps 0.00", "eps 0.02", "eps 0.05", "eps 0.10", "eps 0.20"});
      auto add_rows = [&](const std::string& label, nn::Network& net) {
        for (core::Attack attack : {core::Attack::Fgsm, core::Attack::Pgd}) {
          std::vector<std::string> row{label, core::to_string(attack)};
          for (double eps : eps_levels) {
            row.push_back(exp::fmt_pct(core::adversarial_accuracy(
                              net, *runner.test_set(task), attack, static_cast<float>(eps),
                              n_images),
                          1));
          }
          table.add_row(std::move(row));
        }
      };

      add_rows("dense", *dense);
      auto mid = runner.instantiate(arch, task, family[family.size() / 2]);
      auto last = runner.instantiate(arch, task, family.back());
      add_rows("pruned @" + exp::fmt_pct(mid->prune_ratio(), 0) + "%", *mid);
      add_rows("pruned @" + exp::fmt_pct(last->prune_ratio(), 0) + "%", *last);

      exp::print_header("Adversarial accuracy [" + arch + ", " + core::to_string(m) + "]");
      table.print();

      // Adversarial prune potential: Definition 1 with the FGSM distribution.
      exp::Table pot({"eps", "adversarial prune potential"});
      for (double eps : eps_levels) {
        const double base = 1.0 - core::adversarial_accuracy(
                                      *dense, *runner.test_set(task), core::Attack::Fgsm,
                                      static_cast<float>(eps), n_images);
        std::vector<core::CurvePoint> curve;
        for (const auto& c : family) {
          auto net = runner.instantiate(arch, task, c);
          curve.push_back({c.ratio, 1.0 - core::adversarial_accuracy(
                                              *net, *runner.test_set(task), core::Attack::Fgsm,
                                              static_cast<float>(eps), n_images)});
        }
        pot.add_row({exp::fmt(eps, 2),
                     exp::fmt_pct(core::prune_potential(curve, base, bench::kDelta), 1)});
      }
      pot.print();
    }

    std::printf("\nexpected shape: adversarial accuracy drops sharply with eps for every\n"
                "model; the pruned models' adversarial prune potential collapses at far\n"
                "smaller eps than the l-inf random-noise potential (Figure 1) — the\n"
                "worst-case end of the distribution-shift spectrum.\n");
  });
}
