// Implementation of the in-repo google-benchmark compat subset declared in
// benchmark/benchmark.h. One TU, always compiled -O2 -DNDEBUG by its own
// CMakeLists so `library_build_type` is truthful regardless of the app's
// CMAKE_BUILD_TYPE; scripts/check.sh gate 5 asserts both this value and the
// app-level rp_build_type read "release" before a perf record is trusted.

#include "benchmark/benchmark.h"

#include <time.h>    // clock_gettime: the one sanctioned time source here
#include <unistd.h>  // gethostname, sysconf

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <utility>

namespace benchmark {
namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Timing. A benchmark harness is the one place wall-clock reads are the whole
// point: timings are diagnostics, never fed back into model state, so the
// determinism contract (rp-lint R1) does not reach measurements made here.

double now_real_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

double now_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

// ---------------------------------------------------------------------------
// Driver state (set once by Initialize before any benchmark runs)

struct DriverFlags {
  std::string filter;
  std::string out_path;
  std::string out_format = "json";
  int repetitions = 1;
  bool aggregates_only = false;
  std::string executable = "benchmark";
};

DriverFlags& flags() {
  static DriverFlags f;  // rp-lint: allow(R3) process-wide CLI flags, written once by Initialize before any run
  return f;
}

std::vector<std::pair<std::string, std::string>>& custom_context() {
  static std::vector<std::pair<std::string, std::string>> ctx;  // rp-lint: allow(R3) JSON context entries, appended only during main() setup
  return ctx;
}

std::vector<std::unique_ptr<Benchmark>>& registry() {
  static std::vector<std::unique_ptr<Benchmark>> benches;  // rp-lint: allow(R3) BENCHMARK() registration target; filled by static initializers, read-only afterwards
  return benches;
}

}  // namespace

// One completed measurement (a repetition, or an aggregate over repetitions).
// Lives outside the anonymous namespace so Runner's members can pass it.
struct RunResult {
  std::string name;            ///< instance name (+ _mean/_median/... suffix)
  std::string run_name;        ///< instance name without aggregate suffix
  int family_index = 0;
  int instance_index = 0;
  int repetition_index = -1;   ///< only emitted for iteration entries
  int repetitions = 1;
  std::string aggregate;       ///< empty → run_type "iteration"
  std::string aggregate_unit;  ///< "time" or "percentage"
  std::int64_t iterations = 0;
  double real_ns = 0.0;        ///< per-iteration
  double cpu_ns = 0.0;         ///< per-iteration
  UserCounters counters;       ///< finalized (rates already divided out)
  bool has_items = false;
  double items_per_second = 0.0;
  std::string label;
};

namespace {

// ---------------------------------------------------------------------------
// Helpers that never touch State internals

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

/// mean / median / stddev (sample, n-1) / cv entries over the repetitions,
/// counters included, matching google's StatisticsMean/Median/StdDev/CV set.
std::vector<RunResult> aggregate(const std::vector<RunResult>& reps) {
  auto stat = [&](const char* name, const char* unit, auto reduce) {
    RunResult out = reps.front();
    out.name = out.run_name + "_" + name;
    out.repetition_index = -1;
    out.aggregate = name;
    out.aggregate_unit = unit;
    out.iterations = static_cast<std::int64_t>(reps.size());  // google convention
    auto over = [&](auto get) {
      std::vector<double> vals;
      vals.reserve(reps.size());
      for (const auto& r : reps) vals.push_back(get(r));
      return reduce(vals);
    };
    out.real_ns = over([](const RunResult& r) { return r.real_ns; });
    out.cpu_ns = over([](const RunResult& r) { return r.cpu_ns; });
    for (auto& [key, c] : out.counters) {
      const std::string& k = key;
      c.value = over([&](const RunResult& r) {
        const auto it = r.counters.find(k);
        return it == r.counters.end() ? 0.0 : it->second.value;
      });
    }
    if (out.has_items) {
      out.items_per_second = over([](const RunResult& r) { return r.items_per_second; });
    }
    return out;
  };
  const auto mean = [](std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  const auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  const auto stddev = [mean](std::vector<double>& v) {
    if (v.size() < 2) return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (const double x : v) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
  };
  const auto cv = [mean, stddev](std::vector<double>& v) {
    const double m = mean(v);
    return m != 0.0 ? stddev(v) / m : 0.0;
  };
  return {stat("mean", "time", mean), stat("median", "time", median),
          stat("stddev", "time", stddev), stat("cv", "percentage", cv)};
}

// ---------------------------------------------------------------------------
// Reporters

std::string humanize(double v) {
  const char* suffixes[] = {"", "k", "M", "G", "T"};
  int s = 0;
  while (std::fabs(v) >= 1000.0 && s < 4) {
    v /= 1000.0;
    ++s;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g%s", v, suffixes[s]);
  return buf;
}

void print_console_header() {
  std::printf("%-46s %15s %15s %12s\n", "Benchmark", "Time", "CPU", "Iterations");
  std::printf("%s\n", std::string(92, '-').c_str());
}

void print_console(const RunResult& r) {
  std::string extras;
  if (r.has_items) extras += " items_per_second=" + humanize(r.items_per_second) + "/s";
  for (const auto& [key, c] : r.counters) {
    extras += " " + key + "=" + humanize(c.value) + ((c.flags & Counter::kIsRate) ? "/s" : "");
  }
  if (!r.label.empty()) extras += " " + r.label;
  std::printf("%-46s %12.0f ns %12.0f ns %12lld%s\n", r.name.c_str(), r.real_ns, r.cpu_ns,
              static_cast<long long>(r.iterations), extras.c_str());
}

int read_cpu_mhz() {
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("cpu MHz", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) return static_cast<int>(std::atof(line.c_str() + colon + 1));
    }
  }
  return 0;
}

std::string iso_utc_date() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
  return std::string(buf) + "+00:00";
}

void write_json(std::ostream& os, const std::vector<RunResult>& results) {
  char host[256] = "unknown";
  gethostname(host, sizeof host - 1);
  double load[3] = {0.0, 0.0, 0.0};
  getloadavg(load, 3);
  os << "{\n  \"context\": {\n";
  os << "    \"date\": \"" << iso_utc_date() << "\",\n";
  os << "    \"host_name\": \"" << json_escape(host) << "\",\n";
  os << "    \"executable\": \"" << json_escape(flags().executable) << "\",\n";
  os << "    \"num_cpus\": " << sysconf(_SC_NPROCESSORS_ONLN) << ",\n";
  os << "    \"mhz_per_cpu\": " << read_cpu_mhz() << ",\n";
  os << "    \"cpu_scaling_enabled\": false,\n";
  os << "    \"caches\": [],\n";
  os << "    \"load_avg\": [" << jnum(load[0]) << "," << jnum(load[1]) << "," << jnum(load[2])
     << "],\n";
  // The value the provenance gate audits: this library's own build mode.
#ifdef NDEBUG
  os << "    \"library_build_type\": \"release\"";
#else
  os << "    \"library_build_type\": \"debug\"";
#endif
  for (const auto& [key, value] : custom_context()) {
    os << ",\n    \"" << json_escape(key) << "\": \"" << json_escape(value) << "\"";
  }
  os << "\n  },\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"family_index\": " << r.family_index << ",\n";
    os << "      \"per_family_instance_index\": " << r.instance_index << ",\n";
    os << "      \"run_name\": \"" << json_escape(r.run_name) << "\",\n";
    os << "      \"run_type\": \"" << (r.aggregate.empty() ? "iteration" : "aggregate")
       << "\",\n";
    os << "      \"repetitions\": " << r.repetitions << ",\n";
    if (r.aggregate.empty()) {
      os << "      \"repetition_index\": " << r.repetition_index << ",\n";
    }
    os << "      \"threads\": 1,\n";
    if (!r.aggregate.empty()) {
      os << "      \"aggregate_name\": \"" << r.aggregate << "\",\n";
      os << "      \"aggregate_unit\": \"" << r.aggregate_unit << "\",\n";
    }
    os << "      \"iterations\": " << r.iterations << ",\n";
    os << "      \"real_time\": " << jnum(r.real_ns) << ",\n";
    os << "      \"cpu_time\": " << jnum(r.cpu_ns) << ",\n";
    os << "      \"time_unit\": \"ns\"";
    for (const auto& [key, c] : r.counters) {
      os << ",\n      \"" << json_escape(key) << "\": " << jnum(c.value);
    }
    if (r.has_items) {
      os << ",\n      \"items_per_second\": " << jnum(r.items_per_second);
    }
    if (!r.label.empty()) {
      os << ",\n      \"label\": \"" << json_escape(r.label) << "\"";
    }
    os << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

std::string Benchmark::instance_name(const std::vector<std::int64_t>& args) const {
  std::string name = name_;
  for (const std::int64_t a : args) name += "/" + std::to_string(a);
  if (fixed_iterations_ > 0) name += "/iterations:" + std::to_string(fixed_iterations_);
  if (use_real_time_) name += "/real_time";
  return name;
}

Benchmark* Benchmark::ArgsProduct(const std::vector<std::vector<std::int64_t>>& lists) {
  if (lists.empty()) return this;
  std::vector<std::size_t> idx(lists.size(), 0);
  for (;;) {
    std::vector<std::int64_t> args(lists.size());
    for (std::size_t i = 0; i < lists.size(); ++i) args[i] = lists[i][idx[i]];
    arg_sets_.push_back(std::move(args));
    // Odometer step, rightmost digit fastest (google's product order).
    std::size_t i = lists.size();
    for (;;) {
      if (i == 0) return this;
      --i;
      if (++idx[i] < lists[i].size()) break;
      idx[i] = 0;
    }
  }
}

Benchmark* RegisterBenchmarkInternal(const char* name, void (*fn)(State&)) {
  registry().push_back(std::make_unique<Benchmark>(name, fn));
  return registry().back().get();
}

/// The execution engine. State befriends exactly this class, so everything
/// that constructs a State or reads its measured times lives here.
class Runner {
 public:
  static std::size_t RunAll();

 private:
  /// Picks the iteration count for an instance: the explicit ->Iterations(n)
  /// when given, else grow by timed probes until one pass clears kMinTime
  /// and reuse that count for every repetition (google's estimate-once
  /// protocol, which keeps repetitions comparable).
  static std::int64_t ChooseIterations(const Benchmark& b,
                                       const std::vector<std::int64_t>& args) {
    if (b.fixed_iterations_ > 0) return b.fixed_iterations_;
    constexpr double kMinTime = 0.25;  // seconds per repetition
    constexpr std::int64_t kMaxIters = 1000000000;
    std::int64_t iters = 1;
    for (int round = 0; round < 16; ++round) {
      State st(iters, args);
      b.fn_(st);
      const double elapsed = b.use_real_time_ ? st.real_s_ : st.cpu_s_;
      if (elapsed >= kMinTime) return iters;
      const double per_iter = elapsed / static_cast<double>(iters);
      std::int64_t next = per_iter > 0.0
                              ? static_cast<std::int64_t>(kMinTime * 1.4 / per_iter) + 1
                              : iters * 10;
      next = std::min(next, iters * 10);  // bounded growth smooths noisy probes
      iters = std::max(next, iters + 1);
      if (iters >= kMaxIters) return kMaxIters;
    }
    return iters;
  }

  static RunResult RunRepetition(const Benchmark& b, const std::vector<std::int64_t>& args,
                                 std::int64_t iters, int rep_index, int repetitions) {
    State st(iters, args);
    b.fn_(st);
    RunResult r;
    r.run_name = b.instance_name(args);
    r.name = r.run_name;
    r.repetition_index = rep_index;
    r.repetitions = repetitions;
    r.iterations = iters;
    r.real_ns = st.real_s_ * 1e9 / static_cast<double>(iters);
    r.cpu_ns = st.cpu_s_ * 1e9 / static_cast<double>(iters);
    // Rates (and items_per_second) divide by CPU time unless the benchmark
    // opted into UseRealTime — google's rule, and what the committed record
    // was produced with.
    const double elapsed = b.use_real_time_ ? st.real_s_ : st.cpu_s_;
    for (const auto& [key, c] : st.counters) {
      double v = c.value;
      if (c.flags & Counter::kIsIterationInvariant) v *= static_cast<double>(iters);
      if (c.flags & Counter::kAvgIterations) v /= static_cast<double>(iters);
      if ((c.flags & Counter::kIsRate) && elapsed > 0.0) v /= elapsed;
      r.counters[key] = Counter(v, c.flags, c.oneK);
    }
    if (st.items_processed_ > 0 && elapsed > 0.0) {
      r.has_items = true;
      r.items_per_second = static_cast<double>(st.items_processed_) / elapsed;
    }
    r.label = st.label_;
    return r;
  }
};

std::size_t Runner::RunAll() {
  const DriverFlags& f = flags();
  const bool has_filter = !f.filter.empty() && f.filter != "all";
  std::regex filter_re;
  if (has_filter) filter_re = std::regex(f.filter);
  std::vector<RunResult> results;
  std::size_t run_count = 0;
  bool header_printed = false;
  int family = -1;
  for (const auto& bench : registry()) {
    ++family;
    std::vector<std::vector<std::int64_t>> sets = bench->arg_sets_;
    if (sets.empty()) sets.push_back({});
    int instance = -1;
    for (const auto& args : sets) {
      ++instance;
      const std::string name = bench->instance_name(args);
      if (has_filter && !std::regex_search(name, filter_re)) continue;
      ++run_count;
      const std::int64_t iters = ChooseIterations(*bench, args);
      const int reps_wanted = std::max(1, f.repetitions);
      std::vector<RunResult> reps;
      reps.reserve(static_cast<std::size_t>(reps_wanted));
      for (int rep = 0; rep < reps_wanted; ++rep) {
        RunResult r = RunRepetition(*bench, args, iters, rep, reps_wanted);
        r.family_index = family;
        r.instance_index = instance;
        reps.push_back(std::move(r));
      }
      if (!header_printed) {
        print_console_header();
        header_printed = true;
      }
      if (reps_wanted >= 2) {
        if (!f.aggregates_only) {
          for (const auto& r : reps) {
            print_console(r);
            results.push_back(r);
          }
        }
        for (const auto& r : aggregate(reps)) {
          print_console(r);
          results.push_back(r);
        }
      } else {
        print_console(reps.front());
        results.push_back(reps.front());
      }
    }
  }
  if (!f.out_path.empty()) {
    if (f.out_format != "json") {
      std::fprintf(stderr, "benchmark: unsupported --benchmark_out_format=%s (json only)\n",
                   f.out_format.c_str());
    } else {
      std::ofstream os(f.out_path);
      if (!os) {
        std::fprintf(stderr, "benchmark: cannot open %s\n", f.out_path.c_str());
      } else {
        write_json(os, results);
      }
    }
  }
  return run_count;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// State members that need the timers (kept out of the header)

void State::ResumeTiming() {
  resume_real_ = internal::now_real_seconds();
  resume_cpu_ = internal::now_cpu_seconds();
  timing_ = true;
}

void State::PauseTiming() {
  if (!timing_) return;
  real_s_ += internal::now_real_seconds() - resume_real_;
  cpu_s_ += internal::now_cpu_seconds() - resume_cpu_;
  timing_ = false;
}

State::StateIterator State::begin() {
  real_s_ = 0.0;
  cpu_s_ = 0.0;
  ResumeTiming();
  return StateIterator{this, max_iterations_};
}

void State::FinishLoop() { PauseTiming(); }

// ---------------------------------------------------------------------------
// Public driver API

void Initialize(int* argc, char** argv) {
  internal::DriverFlags& f = internal::flags();
  if (*argc > 0) f.executable = argv[0];
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&arg](const char* flag, std::string* dst) {
      const std::string prefix = std::string("--") + flag + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *dst = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    if (take("benchmark_filter", &f.filter)) continue;
    if (take("benchmark_out", &f.out_path)) continue;
    if (take("benchmark_out_format", &f.out_format)) continue;
    if (take("benchmark_repetitions", &value)) {
      f.repetitions = std::max(1, std::atoi(value.c_str()));
      continue;
    }
    if (take("benchmark_report_aggregates_only", &value)) {
      f.aggregates_only = (value == "true" || value == "1");
      continue;
    }
    if (arg.rfind("--benchmark_", 0) == 0) {
      // Recognized family, unsupported flag: drop it with a note rather than
      // failing scripts that pass google-only options.
      std::fprintf(stderr, "benchmark: ignoring unsupported flag %s\n", arg.c_str());
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
}

bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: error: unrecognized command-line flag: %s\n",
                 internal::flags().executable.c_str(), argv[i]);
  }
  return argc > 1;
}

std::size_t RunSpecifiedBenchmarks() { return internal::Runner::RunAll(); }

void AddCustomContext(const std::string& key, const std::string& value) {
  internal::custom_context().emplace_back(key, value);
}

}  // namespace benchmark
