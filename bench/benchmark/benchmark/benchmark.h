#ifndef BENCHMARK_BENCHMARK_H_
#define BENCHMARK_BENCHMARK_H_

// In-repo, API-compatible subset of google/benchmark, just large enough for
// the micro-benchmark suite in bench/bench_micro_ops.cpp (and any future
// micro bench that sticks to the same surface):
//
//   State (range / iterations / counters / Pause-ResumeTiming / SetLabel /
//   SetItemsProcessed / SetBytesProcessed), Counter{kIsRate, kIs1000},
//   DoNotOptimize, BENCHMARK()->Arg/Args/ArgsProduct/DenseRange/Iterations/
//   UseRealTime, Initialize, ReportUnrecognizedArguments,
//   RunSpecifiedBenchmarks, AddCustomContext, and the console + JSON
//   reporters with --benchmark_filter / _out / _out_format / _repetitions /
//   _report_aggregates_only.
//
// Why in-repo: the perf record committed to BENCH_micro_ops.json must be
// auditable as a true Release measurement. The distro-packaged benchmark
// library is compiled once by the distribution (a Debug .so reports
// "library_build_type": "debug" forever, poisoning the provenance gate in
// scripts/check.sh), and adding a vendored copy of the real library is a
// dependency this repo cannot take. This translation unit is always compiled
// -O2 -DNDEBUG by bench/benchmark/CMakeLists.txt, and `library_build_type`
// in the JSON context is derived from THIS library's own NDEBUG state — the
// value is truthful by construction, not inherited from a package builder.
//
// Semantics intentionally match google/benchmark where the suite depends on
// them: per-repetition timing re-measures through the state loop, rates
// (Counter::kIsRate, items_per_second) divide by CPU time unless the
// benchmark opted into UseRealTime, repeated runs aggregate into
// mean/median/stddev/cv entries, and --benchmark_report_aggregates_only
// drops the per-repetition entries (ignored when repetitions < 2).

#include <cstdint>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

// ---------------------------------------------------------------------------
// User counters

class Counter {
 public:
  enum Flags : unsigned {
    kDefaults = 0,
    kIsRate = 1U << 0,               ///< value is divided by elapsed seconds
    kAvgThreads = 1U << 1,           ///< accepted, no-op (single-threaded runner)
    kIsIterationInvariant = 1U << 2, ///< value is multiplied by iteration count
    kAvgIterations = 1U << 3,        ///< value is divided by iteration count
  };
  enum OneK : std::int32_t {
    kIs1000 = 1000,  ///< SI prefixes in the console reporter (k, M, G)
    kIs1024 = 1024,  ///< IEC prefixes (Ki, Mi, Gi)
  };

  double value = 0.0;
  Flags flags = kDefaults;
  OneK oneK = kIs1000;

  Counter() = default;
  Counter(double v, Flags f = kDefaults, OneK k = kIs1000) : value(v), flags(f), oneK(k) {}
  operator double() const { return value; }  // NOLINT(google-explicit-constructor)
};

using UserCounters = std::map<std::string, Counter>;

// ---------------------------------------------------------------------------
// State — the per-run handle a benchmark function iterates on

namespace internal {
class Runner;
}  // namespace internal

class State {
 public:
  /// i-th argument of this instance (from Arg/Args/ArgsProduct/DenseRange).
  std::int64_t range(std::size_t i = 0) const { return ranges_.at(i); }

  /// Iterations this run executes (fixed before the loop starts).
  std::int64_t iterations() const { return max_iterations_; }

  /// Excludes a setup/teardown region from the measured time.
  void PauseTiming();
  void ResumeTiming();

  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }
  void SetLabel(const std::string& label) { label_ = label; }

  UserCounters counters;

  /// Range-for protocol: `for (auto _ : state)` starts the timer on entry,
  /// runs exactly iterations() laps, and stops the timer on exhaustion.
  struct StateIterator {
    State* parent = nullptr;
    std::int64_t remaining = 0;

    /// The attribute rides on the TYPE so `for (auto _ : state)` never
    /// trips -Wunused-variable / -Wunused-but-set-variable under -Werror
    /// (google's BENCHMARK_UNUSED Value trick).
    struct [[maybe_unused]] Value {};
    Value operator*() const { return Value(); }
    StateIterator& operator++() {
      --remaining;
      return *this;
    }
    bool operator!=(const StateIterator& /*end*/) {
      if (remaining > 0) return true;
      parent->FinishLoop();
      return false;
    }
  };
  StateIterator begin();
  StateIterator end() { return StateIterator{}; }

 private:
  friend class internal::Runner;
  State(std::int64_t iters, std::vector<std::int64_t> ranges)
      : max_iterations_(iters), ranges_(std::move(ranges)) {}
  void FinishLoop();

  std::int64_t max_iterations_ = 0;
  std::vector<std::int64_t> ranges_;
  std::int64_t items_processed_ = 0;
  std::int64_t bytes_processed_ = 0;
  std::string label_;
  // Accumulated measured time (seconds), maintained by begin()/Pause/Resume/
  // FinishLoop through the Runner.
  double real_s_ = 0.0;
  double cpu_s_ = 0.0;
  double resume_real_ = 0.0;
  double resume_cpu_ = 0.0;
  bool timing_ = false;
};

// ---------------------------------------------------------------------------
// Registration

namespace internal {

/// One registered benchmark function plus its instance matrix. The fluent
/// setters mirror google/benchmark and return `this` for chaining.
class Benchmark {
 public:
  Benchmark(std::string name, void (*fn)(State&)) : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(std::int64_t x) {
    arg_sets_.push_back({x});
    return this;
  }
  Benchmark* Args(const std::vector<std::int64_t>& args) {
    arg_sets_.push_back(args);
    return this;
  }
  /// Cartesian product, rightmost list varying fastest (google order).
  Benchmark* ArgsProduct(const std::vector<std::vector<std::int64_t>>& lists);
  Benchmark* DenseRange(std::int64_t lo, std::int64_t hi, std::int64_t step = 1) {
    for (std::int64_t v = lo; v <= hi; v += step) arg_sets_.push_back({v});
    return this;
  }
  Benchmark* Iterations(std::int64_t n) {
    fixed_iterations_ = n;
    return this;
  }
  Benchmark* UseRealTime() {
    use_real_time_ = true;
    return this;
  }

  /// Reporting name of one instance: base + /args + the google-style
  /// "/iterations:N" and "/real_time" suffixes.
  std::string instance_name(const std::vector<std::int64_t>& args) const;

 private:
  friend class Runner;
  std::string name_;
  void (*fn_)(State&) = nullptr;
  std::vector<std::vector<std::int64_t>> arg_sets_;  ///< empty → one no-arg instance
  std::int64_t fixed_iterations_ = 0;                ///< 0 → adaptive
  bool use_real_time_ = false;
};

Benchmark* RegisterBenchmarkInternal(const char* name, void (*fn)(State&));

}  // namespace internal

#define BENCHMARK_PRIVATE_CONCAT2(a, b) a##b
#define BENCHMARK_PRIVATE_CONCAT(a, b) BENCHMARK_PRIVATE_CONCAT2(a, b)
#define BENCHMARK(func)                                                      \
  static ::benchmark::internal::Benchmark* BENCHMARK_PRIVATE_CONCAT(        \
      bm_registration_, __LINE__) [[maybe_unused]] =                         \
      ::benchmark::internal::RegisterBenchmarkInternal(#func, &func)

// ---------------------------------------------------------------------------
// Optimizer fences

template <class Tp>
inline void DoNotOptimize(Tp const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class Tp>
inline void DoNotOptimize(Tp& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}
inline void ClobberMemory() { asm volatile("" ::: "memory"); }

// ---------------------------------------------------------------------------
// Driver

/// Parses and strips the recognized --benchmark_* flags from argv.
void Initialize(int* argc, char** argv);
/// True (after printing them) when non-flag arguments remain past argv[0].
bool ReportUnrecognizedArguments(int argc, char** argv);
/// Runs every registered instance passing the filter; writes the console
/// report and, with --benchmark_out, the JSON record. Returns the count run.
std::size_t RunSpecifiedBenchmarks();
/// Adds a key/value pair to the JSON "context" object.
void AddCustomContext(const std::string& key, const std::string& value);

}  // namespace benchmark

#endif  // BENCHMARK_BENCHMARK_H_
