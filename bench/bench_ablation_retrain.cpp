// Ablation of the retraining regime (Renda, Frankle & Carbin 2020, the
// pipeline the paper adopts): LR rewinding (the paper's choice) vs
// fine-tuning at the final learning rate vs weight rewinding, compared on
// nominal accuracy and on a hard corruption across the prune sweep.

#include "common.hpp"

#include "core/prune_retrain.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Ablation: retraining regime (fine-tune / LR rewind / weight rewind)",
                        runner, {arch});
    const auto& s = runner.scale();
    auto gauss = bench::corrupted_test(runner, task, "gauss", s.severity);

    std::vector<double> xs;
    std::vector<exp::Series> nominal_series, gauss_series;
    exp::Table table({"mode", "nominal potential", "gauss/3 potential"});

    for (core::RetrainMode mode : {core::RetrainMode::LrRewind, core::RetrainMode::FineTune,
                                   core::RetrainMode::WeightRewind}) {
      auto net = runner.trained(arch, task, 0);
      core::PruneRetrainConfig prc;
      prc.method = core::PruneMethod::WT;
      prc.keep_per_cycle = s.keep_per_cycle;
      prc.cycles = s.cycles;
      prc.retrain = runner.train_config(arch, 0);
      prc.retrain.epochs = s.retrain_epochs;
      for (int& ms : prc.retrain.schedule.milestones) {
        ms = ms * s.retrain_epochs / std::max(1, s.epochs);
      }
      prc.retrain.schedule.total_epochs = s.retrain_epochs;
      prc.mode = mode;

      std::vector<core::CurvePoint> nom_curve, gauss_curve;
      core::prune_retrain(*net, *runner.train_set(task), prc, [&](int, double ratio) {
        nom_curve.push_back({ratio, nn::evaluate(*net, *runner.test_set(task)).error()});
        gauss_curve.push_back({ratio, nn::evaluate(*net, *gauss).error()});
      });

      if (xs.empty()) {
        for (const auto& p : nom_curve) xs.push_back(p.ratio);
      }
      std::vector<double> nom_acc, gauss_acc;
      for (const auto& p : nom_curve) nom_acc.push_back(100.0 * (1.0 - p.error));
      for (const auto& p : gauss_curve) gauss_acc.push_back(100.0 * (1.0 - p.error));
      nominal_series.push_back({core::to_string(mode), std::move(nom_acc)});
      gauss_series.push_back({core::to_string(mode), std::move(gauss_acc)});

      const double nom_base = runner.dense_error(arch, task, 0, *runner.test_set(task));
      const double gauss_base = runner.dense_error(arch, task, 0, *gauss);
      table.add_row({core::to_string(mode),
                     exp::fmt_pct(core::prune_potential(nom_curve, nom_base, bench::kDelta), 1),
                     exp::fmt_pct(core::prune_potential(gauss_curve, gauss_base, bench::kDelta),
                                  1)});
    }

    exp::print_chart("Retrain-mode ablation: nominal accuracy (%) vs prune ratio", "ratio", xs,
                     nominal_series);
    exp::print_chart("Retrain-mode ablation: gauss/3 accuracy (%) vs prune ratio", "ratio", xs,
                     gauss_series);
    table.print();
    std::printf("\nexpected (Renda et al. + this paper): LR rewinding >= weight rewinding >\n"
                "fine-tuning at high prune ratios; the o.o.d. (gauss) gap persists under\n"
                "every retraining regime — it is not an artifact of the retrain recipe.\n");
  });
}
