// Reproduces Figure 6c/6f and Figures 39-44: the difference in excess error
// between pruned and unpruned networks as a function of the prune ratio,
// with the through-origin OLS fit and bootstrapped 95% confidence band of
// Appendix D.5. A positive slope means pruned networks lose *more* accuracy
// than their parent when the data distribution shifts.

#include "common.hpp"

#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::vector<std::string> archs =
        runner.scale().paper ? nn::classification_archs()
                             : std::vector<std::string>{"resnet8", "vgg11", "wrn"};
    bench::print_banner(
        "Figure 6c/6f + Figures 39-44: difference in excess error vs prune ratio", runner,
        archs);

    auto shifted = bench::mixed_corrupted_test(runner, task, runner.scale().severity);
    const int reps = runner.scale().reps;

    for (const auto& arch : archs) {
      exp::Table table({"method", "OLS slope (% / unit ratio)", "95% CI", "corr(ratio, dExcess)"});
      std::vector<exp::Series> series;
      std::vector<double> xs;

      for (core::PruneMethod m : core::kAllMethods) {
        std::vector<double> ratios, deltas;
        std::vector<double> rep0_curve;
        for (int rep = 0; rep < reps; ++rep) {
          const double dense_nom = runner.dense_error(arch, task, rep, *runner.test_set(task));
          const double dense_shift = runner.dense_error(arch, task, rep, *shifted);
          const auto nom = runner.curve_cached(arch, task, m, rep, *runner.test_set(task));
          const auto shift = runner.curve_cached(arch, task, m, rep, *shifted);
          for (size_t i = 0; i < nom.size(); ++i) {
            const double d = core::excess_error_difference(shift[i].error, nom[i].error,
                                                           dense_shift, dense_nom);
            ratios.push_back(nom[i].ratio);
            deltas.push_back(100.0 * d);
            if (rep == 0) rep0_curve.push_back(100.0 * d);
            if (rep == 0 && xs.size() < nom.size()) xs.push_back(nom[i].ratio);
          }
        }
        const double slope = exp::ols_slope_origin(ratios, deltas);
        const auto ci = exp::bootstrap_slope_ci(ratios, deltas, runner.scale().bootstrap_iters,
                                                0.95, seed_from_string(arch.c_str()));
        table.add_row({core::to_string(m), exp::fmt(slope, 2),
                       "[" + exp::fmt(ci.lo, 2) + ", " + exp::fmt(ci.hi, 2) + "]",
                       exp::fmt(exp::pearson(ratios, deltas), 2)});
        series.push_back({core::to_string(m), std::move(rep0_curve)});
      }

      exp::print_chart("Figures 39-44 [" + arch +
                           "]: difference in excess error (%) vs prune ratio (rep 0)",
                       "ratio", xs, series);
      table.print();
    }

    std::printf("\npaper shape check: slopes are positive for most (arch, method) pairs —\n"
                "pruned networks suffer disproportionately under shift — with filter\n"
                "pruning steeper than weight pruning; the genuinely overparameterized\n"
                "wide net (wrn) shows the flattest slope (Figure 44).\n");
  });
}
