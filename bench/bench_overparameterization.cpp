// Reproduces Table 2 and Tables 9/10: the average and minimum prune
// potential over the train distribution (nominal test data) and the test
// distribution (all corruption families), per network and pruning method —
// the paper's quantitative measure of *genuine* overparameterization.

#include "common.hpp"

#include "core/guidelines.hpp"
#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::vector<std::string> archs =
        runner.scale().paper ? nn::classification_archs()
                             : std::vector<std::string>{"resnet8", "vgg11", "wrn"};
    bench::print_banner(
        "Table 2 + Tables 9/10: average/minimum prune potential, train vs test distribution",
        runner, archs);

    const int severity = runner.scale().severity;
    const int reps = runner.scale().reps;
    const auto corruptions = corrupt::all_names();

    exp::Table t2({"model", "method", "train dist.", "test dist. (avg)", "diff",
                   "test dist. (min)", "guideline"});

    for (const auto& arch : archs) {
      for (core::PruneMethod m : core::kAllMethods) {
        // Per-rep: potential on nominal data and per-corruption potentials.
        std::vector<double> train_pot, test_avg, test_min;
        for (int rep = 0; rep < reps; ++rep) {
          const double nominal = bench::potential_one_rep(runner, arch, task, m, rep,
                                                          *runner.test_set(task));
          std::vector<double> per_corruption;
          for (const auto& name : corruptions) {
            auto ds = bench::corrupted_test(runner, task, name, severity);
            per_corruption.push_back(
                bench::potential_one_rep(runner, arch, task, m, rep, *ds));
          }
          const auto s = core::summarize_potentials(per_corruption);
          train_pot.push_back(nominal);
          test_avg.push_back(s.average);
          test_min.push_back(s.minimum);
        }
        const auto ts = exp::summarize(train_pot);
        const auto as = exp::summarize(test_avg);
        const auto ms = exp::summarize(test_min);

        core::PotentialEvidence evidence;
        evidence.train = ts.mean;
        evidence.test_average = as.mean;
        evidence.test_minimum = ms.mean;
        evidence.shifts_modeled = false;

        t2.add_row({arch, core::to_string(m),
                    exp::fmt_pm(100 * ts.mean, 100 * ts.stddev, 1),
                    exp::fmt_pm(100 * as.mean, 100 * as.stddev, 1),
                    exp::fmt(100 * (as.mean - ts.mean), 1),
                    exp::fmt_pm(100 * ms.mean, 100 * ms.stddev, 1),
                    core::to_string(core::recommend(evidence))});
      }
    }

    exp::print_header("Tables 2/9/10: prune potential (%) on train vs test distribution");
    t2.print();
    std::printf(
        "\npaper shape check: every network loses potential from train to test\n"
        "distribution (negative diff, often ~-10 to -20 points); the minimum over\n"
        "corruptions collapses to ~0%% for most (model, method) pairs, while the\n"
        "wide net (wrn) keeps a high minimum — the paper's 'genuinely\n"
        "overparameterized' case; the guideline column applies Section 1's rules.\n");
  });
}
