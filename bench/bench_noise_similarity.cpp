// Reproduces Figure 4 and Figures 16-27: the functional similarity between
// pruned networks and their unpruned parent under ℓ∞ input noise, measured
// as (a) the fraction of matching label predictions and (b) the ℓ2 distance
// of the softmax outputs. A separately trained unpruned network provides the
// dissimilarity baseline.

#include "common.hpp"

#include "core/noise_similarity.hpp"
#include "nn/models.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::vector<std::string> archs =
        runner.scale().paper ? nn::classification_archs()
                             : std::vector<std::string>{"resnet8"};
    bench::print_banner("Figure 4 + Figures 16-27: noise similarity to the unpruned parent",
                        runner, archs);

    const std::vector<double> eps_levels{0.0, 0.02, 0.05, 0.1, 0.15};
    const auto& s = runner.scale();

    for (const auto& arch : archs) {
      auto parent = runner.trained(arch, task, 0);
      auto separate = runner.separate(arch, task, 0);
      auto test = runner.test_set(task);

      for (core::PruneMethod m : core::kAllMethods) {
        const auto family = runner.sweep(arch, task, m, 0);
        // Compare a mid and the max checkpoint, plus the separate network.
        struct Row {
          std::string label;
          nn::NetworkPtr net;
        };
        std::vector<Row> rows;
        rows.push_back({"pruned @" + exp::fmt_pct(family[family.size() / 2].ratio, 0) + "%",
                        runner.instantiate(arch, task, family[family.size() / 2])});
        rows.push_back({"pruned @" + exp::fmt_pct(family.back().ratio, 0) + "%",
                        runner.instantiate(arch, task, family.back())});
        rows.push_back({"separate (unpruned)", nullptr});

        exp::Table table({"model vs parent", "metric", "eps 0.00", "eps 0.02", "eps 0.05",
                          "eps 0.10", "eps 0.15"});
        std::vector<exp::Series> match_series, l2_series;

        for (const auto& row : rows) {
          nn::Network& other = row.net ? *row.net : *separate;
          std::vector<std::string> match_cells{row.label, "match %"};
          std::vector<std::string> l2_cells{row.label, "softmax l2"};
          std::vector<double> match_y, l2_y;
          for (double eps : eps_levels) {
            const auto r = core::noise_similarity(
                *parent, other, *test, static_cast<float>(eps), s.noise_images, s.noise_reps,
                seed_from_string((arch + row.label).c_str()));
            match_cells.push_back(exp::fmt_pct(r.match_fraction, 1));
            l2_cells.push_back(exp::fmt(r.softmax_l2, 3));
            match_y.push_back(100.0 * r.match_fraction);
            l2_y.push_back(r.softmax_l2);
          }
          table.add_row(std::move(match_cells));
          table.add_row(std::move(l2_cells));
          match_series.push_back({row.label, std::move(match_y)});
          l2_series.push_back({row.label, std::move(l2_y)});
        }

        exp::print_header("Figures 16-27 [" + arch + ", " + core::to_string(m) + "]");
        exp::print_chart("(a) matching predictions (%) vs noise eps", "eps", eps_levels,
                         match_series);
        exp::print_chart("(b) softmax l2 difference vs noise eps", "eps", eps_levels, l2_series);
        table.print();
      }
    }

    std::printf("\npaper shape check: pruned networks match their parent far more often than\n"
                "the separately trained network at every noise level; agreement decreases\n"
                "with the prune ratio and with eps (Figure 4).\n");
  });
}
