// Reproduces Figure 38: how the choice of the commensurate-accuracy margin δ
// affects the measured prune potential. The paper's conclusion — the
// absolute potential grows with δ but the cross-distribution *trends* are
// unchanged — is checked across δ ∈ [0%, 5%].

#include "common.hpp"

#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Figure 38: prune potential vs margin delta", runner, {arch});

    const std::vector<double> deltas{0.0, 0.005, 0.01, 0.02, 0.05};
    const int severity = runner.scale().severity;
    // Nominal plus an easy and a hard corruption, as in the paper's panel.
    const std::vector<std::pair<std::string, data::DatasetPtr>> dists{
        {"nominal", runner.test_set(task)},
        {"jpeg", bench::corrupted_test(runner, task, "jpeg", severity)},
        {"gauss", bench::corrupted_test(runner, task, "gauss", severity)},
    };

    for (core::PruneMethod m : {core::PruneMethod::WT, core::PruneMethod::FT}) {
      exp::Table table({"delta (%)", "nominal", "jpeg", "gauss"});
      std::vector<exp::Series> series(dists.size());
      for (size_t d = 0; d < dists.size(); ++d) series[d].label = dists[d].first;

      for (double delta : deltas) {
        std::vector<std::string> row{exp::fmt_pct(delta, 1)};
        for (size_t d = 0; d < dists.size(); ++d) {
          const double base = runner.dense_error(arch, task, 0, *dists[d].second);
          const auto curve = runner.curve_cached(arch, task, m, 0, *dists[d].second);
          const double p = core::prune_potential(curve, base, delta);
          row.push_back(exp::fmt_pct(p, 1));
          series[d].y.push_back(100.0 * p);
        }
        table.add_row(std::move(row));
      }

      exp::print_chart("Figure 38 [" + core::to_string(m) + "-pruned " + arch +
                           "]: prune potential (%) vs delta",
                       "delta", deltas, series);
      table.print();
    }

    std::printf("\npaper shape check: potential grows monotonically with delta for every\n"
                "distribution, but the ordering nominal >= jpeg >= gauss is preserved at\n"
                "every delta — the conclusions do not hinge on the margin choice.\n");
  });
}
