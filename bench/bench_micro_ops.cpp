// Micro-benchmarks (google-benchmark) for the substrate operations that
// dominate experiment wall-clock, plus the DESIGN.md ablations:
//   - GEMM / im2col / convolution forward+backward throughput
//   - masked-vs-dense cost (the masks-not-surgery design decision)
//   - pruning-score computation per method (sensitivity ablation)
//   - corruption throughput per family
//   - one BackSelect greedy step

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/backselect.hpp"
#include "core/pruner.hpp"
#include "corrupt/corruption.hpp"
#include "data/synth.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "tensor/arena.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"
#include "tensor/sparse.hpp"

// ---------------------------------------------------------------------------
// Heap-allocation census for the BM_*Allocs benches: every operator new in
// this binary bumps a counter. The replacement exists in the bench binary
// only — the library is untouched — and delegates to malloc/free, so the
// arena's own chunk mmap/malloc traffic (which happens once at warmup) is
// deliberately NOT counted: the benches measure per-step operator-new
// traffic, the thing the memory-discipline engine promises to eliminate.

// noinline: keeps the census bodies out of callers, which would otherwise
// trip GCC's -Wmismatched-new-delete (it sees the inlined free() paired with
// an operator-new result and cannot prove both sides route through malloc).
#define RP_ALLOC_HOOK __attribute__((noinline))

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

RP_ALLOC_HOOK void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
RP_ALLOC_HOOK void* operator new[](std::size_t size) { return ::operator new(size); }
RP_ALLOC_HOOK void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
RP_ALLOC_HOOK void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
RP_ALLOC_HOOK void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
RP_ALLOC_HOOK void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
RP_ALLOC_HOOK void operator delete(void* p) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete[](void* p) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete(void* p, std::size_t) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
RP_ALLOC_HOOK void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

using namespace rp;

namespace {

/// Reports achieved arithmetic throughput; with kIs1000 the console shows
/// G/s and the JSON carries the raw FLOP/s number for cross-PR tracking.
void report_flops(benchmark::State& state, double flops_per_iter) {
  state.counters["FLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * flops_per_iter, benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  report_flops(state, 2.0 * static_cast<double>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/// The acceptance benchmark for the threaded backend: 512^3 GEMM at an
/// explicit lane count (1/2/4/8), bypassing RP_THREADS for the run.
void BM_GemmThreads(benchmark::State& state) {
  const int64_t n = 512;
  const int threads = static_cast<int>(state.range(0));
  parallel::set_num_threads(threads);
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  parallel::set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  report_flops(state, 2.0 * static_cast<double>(n * n * n));
  state.SetLabel("512x512x512 @ " + std::to_string(threads) + " threads");
}
// UseRealTime: rates must come from wall-clock, not the main thread's CPU
// time — otherwise multi-lane runs report inflated throughput.
BENCHMARK(BM_GemmThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// The acceptance benchmark for the SIMD microkernel: 512^3 GEMM at one
/// thread, forced-scalar vs dispatched ISA. The two variants are bit-identical
/// in output (tests/test_simd.cpp); this measures what the dispatch buys.
void BM_GemmSimd(benchmark::State& state) {
  const bool dispatched = state.range(0) != 0;
  const int64_t n = 512;
  parallel::set_num_threads(1);
  if (dispatched) {
    simd::reset();
  } else {
    simd::force(simd::Isa::kScalar);
  }
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetLabel(std::string("512x512x512 @ 1 thread, ") + simd::isa_name(simd::active()));
  simd::reset();
  parallel::set_num_threads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  report_flops(state, 2.0 * static_cast<double>(n * n * n));
}
BENCHMARK(BM_GemmSimd)->Arg(0)->Arg(1)->UseRealTime();

/// Conv forward at one thread, forced-scalar vs dispatched ISA. FLOPs count
/// the im2col GEMM only (2 * out_c * patch * out_hw per sample).
void BM_ConvForwardSimd(benchmark::State& state) {
  const bool dispatched = state.range(0) != 0;
  parallel::set_num_threads(1);
  if (dispatched) {
    simd::reset();
  } else {
    simd::force(simd::Isa::kScalar);
  }
  Rng rng(3);
  nn::Conv2d conv("c", 8, 16, 3, 1, 1, 16, 16, false, rng);
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetLabel(std::string("n8 c8->16 k3 16x16 @ 1 thread, ") +
                 simd::isa_name(simd::active()));
  simd::reset();
  parallel::set_num_threads(0);
  const double flops = 2.0 * 8 * 16 * (8 * 9) * (16 * 16);
  report_flops(state, flops);
}
BENCHMARK(BM_ConvForwardSimd)->Arg(0)->Arg(1)->UseRealTime();

/// Conv backward at one thread, forced-scalar vs dispatched ISA. FLOPs count
/// the dW and dx GEMMs (2x the forward GEMM work).
void BM_ConvBackwardSimd(benchmark::State& state) {
  const bool dispatched = state.range(0) != 0;
  parallel::set_num_threads(1);
  if (dispatched) {
    simd::reset();
  } else {
    simd::force(simd::Isa::kScalar);
  }
  Rng rng(4);
  nn::Conv2d conv("c", 8, 16, 3, 1, 1, 16, 16, false, rng);
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  Tensor y = conv.forward(x, true);
  Tensor dy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data().data());
  }
  state.SetLabel(std::string("n8 c8->16 k3 16x16 @ 1 thread, ") +
                 simd::isa_name(simd::active()));
  simd::reset();
  parallel::set_num_threads(0);
  const double flops = 2.0 * 2.0 * 8 * 16 * (8 * 9) * (16 * 16);
  report_flops(state, flops);
}
BENCHMARK(BM_ConvBackwardSimd)->Arg(0)->Arg(1)->UseRealTime();

/// The acceptance benchmark for the compile-to-sparse engine: n³ GEMM at one
/// thread with the A operand unstructured-pruned to a target density
/// (per-mille in arg 1), executed dense (arg 2 = 0) or through a compiled
/// CSR (1) / 4×8 block (2) layout. All three variants are bit-identical in
/// output (tests/test_sparse.cpp); the dense rows at each density are the
/// baseline of the committed speedup-vs-density curves. Acceptance: ≥3×
/// over dense at ≤10% density.
void BM_SparseGemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  const int64_t layout = state.range(2);
  parallel::set_num_threads(1);
  Rng rng(11);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  if (density < 1.0) {
    for (float& v : a.data()) {
      if (rng.uniform() >= static_cast<float>(density)) v = 0.0f;
    }
  }
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  if (layout == 0) {
    for (auto _ : state) {
      gemm(a, b, c);
      benchmark::DoNotOptimize(c.data().data());
    }
  } else {
    const auto w =
        sparse::compile(a, layout == 1 ? sparse::Mode::kCsr : sparse::Mode::kBlock);
    for (auto _ : state) {
      sparse::matmul_into(w, b, c);
      benchmark::DoNotOptimize(c.data().data());
    }
  }
  parallel::set_num_threads(0);
  // Dense-equivalent FLOPs on purpose: the curves compare layouts at equal
  // problem size, so speedup reads directly off the FLOPS ratio.
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  report_flops(state, 2.0 * static_cast<double>(n * n * n));
  const char* kLayoutNames[] = {"dense", "csr", "block"};
  state.SetLabel(std::to_string(n) + "^3 @ 1 thread, density " + std::to_string(density) +
                 ", " + kLayoutNames[layout]);
}
BENCHMARK(BM_SparseGemm)
    ->ArgsProduct({{128, 256, 512}, {1000, 500, 200, 100, 50}, {0, 1, 2}})
    ->UseRealTime();

/// The acceptance benchmark for the observability layer: counter increments
/// and span construction with obs disabled must collapse to one predicted
/// branch each — this pins that cost in the committed record. Arg(1)
/// measures the enabled path for contrast (metrics only, no trace buffer).
void BM_ObsDisabled(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  obs::Config cfg;
  cfg.metrics = on;
  obs::configure(cfg);
  for (auto _ : state) {
    obs::count(obs::Counter::kGemmCalls);
    benchmark::DoNotOptimize(obs::enabled());
  }
  state.SetLabel(on ? "counters enabled" : "counters disabled");
  obs::init_from_env();
}
BENCHMARK(BM_ObsDisabled)->Arg(0)->Arg(1);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::configure(obs::Config{});
  for (auto _ : state) {
    const obs::Span span("bench.noop");
    benchmark::DoNotOptimize(obs::enabled());
  }
  obs::init_from_env();
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_Im2col(benchmark::State& state) {
  ConvGeom g{16, 16, 16, 3, 1, 1};
  Rng rng(2);
  Tensor img = Tensor::randn(Shape{16, 16, 16}, rng);
  Tensor cols;
  for (auto _ : state) {
    im2col(img, g, cols);
    benchmark::DoNotOptimize(cols.data().data());
  }
}
BENCHMARK(BM_Im2col);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv("c", 8, 16, 3, 1, 1, 16, 16, false, rng);
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv("c", 8, 16, 3, 1, 1, 16, 16, false, rng);
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  Tensor y = conv.forward(x, false);
  Tensor dy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    Tensor dx = conv.backward(dy);
    benchmark::DoNotOptimize(dx.data().data());
  }
}
BENCHMARK(BM_ConvBackward);

/// Ablation (DESIGN.md "masks, not surgery"): a forward pass at 90% sparsity
/// costs the same as dense under the mask representation — the FLOP model,
/// not the wall-clock, accounts for sparsity. Rows of zeros *are* skipped by
/// the GEMM kernel's zero check, so structured sparsity shows real savings.
void BM_MaskedForward(benchmark::State& state) {
  const bool structured = state.range(0) != 0;
  Rng rng(5);
  nn::Conv2d conv("c", 8, 16, 3, 1, 1, 16, 16, false, rng);
  auto& w = conv.weight();
  if (structured) {
    for (int64_t r = 0; r < 14; ++r) {  // kill 14 of 16 filters (rows)
      for (int64_t j = 0; j < w.value.size(1); ++j) {
        w.mask.at(r, j) = 0.0f;
      }
    }
  } else {
    for (int64_t i = 0; i < w.value.numel() * 9 / 10; ++i) w.mask[i] = 0.0f;
  }
  w.enforce_mask();
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetLabel(structured ? "structured 87% (rows zero)" : "unstructured 90%");
}
BENCHMARK(BM_MaskedForward)->Arg(0)->Arg(1);

/// Ablation: score computation cost per pruning method (the data-informed
/// methods pay for profiling separately; this isolates the ranking).
void BM_PruneToRatio(benchmark::State& state) {
  const auto method = static_cast<core::PruneMethod>(state.range(0));
  data::SynthConfig cfg;
  cfg.n = 32;
  cfg.seed = 6;
  auto ds = data::make_synth_classification(cfg);
  for (auto _ : state) {
    state.PauseTiming();
    auto net = nn::build_network("resnet8", nn::synth_cifar_task(), 1);
    nn::profile_activations(*net, *ds, 32);
    state.ResumeTiming();
    core::prune_to_ratio(*net, method, 0.5);
    benchmark::DoNotOptimize(net->prune_ratio());
  }
  state.SetLabel(core::to_string(method));
}
BENCHMARK(BM_PruneToRatio)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(10);

void BM_Corruption(benchmark::State& state) {
  const auto& c = *corrupt::registry()[static_cast<size_t>(state.range(0))];
  data::SynthConfig cfg;
  cfg.n = 1;
  cfg.seed = 7;
  Tensor img = data::make_synth_classification(cfg)->image(0);
  Rng rng(8);
  for (auto _ : state) {
    Tensor out = c.apply(img, 3, rng);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetLabel(c.name());
}
BENCHMARK(BM_Corruption)->DenseRange(0, 15);

void BM_SynthGeneration(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    data::SynthConfig cfg;
    cfg.n = 64;
    cfg.seed = ++seed;
    auto ds = data::make_synth_classification(cfg);
    benchmark::DoNotOptimize(ds->size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SynthGeneration);

void BM_TrainingStep(benchmark::State& state) {
  data::SynthConfig cfg;
  cfg.n = 64;
  cfg.seed = 9;
  auto ds = data::make_synth_classification(cfg);
  auto net = nn::build_network("resnet8", nn::synth_cifar_task(), 1);
  std::vector<int64_t> idx(64);
  for (int64_t i = 0; i < 64; ++i) idx[static_cast<size_t>(i)] = i;
  data::Batch batch = data::make_batch(*ds, idx);
  for (auto _ : state) {
    Tensor logits = net->forward(batch.images, true);
    const auto lr = nn::softmax_cross_entropy(logits, batch.labels);
    net->zero_grad();
    net->backward(lr.dlogits);
    benchmark::DoNotOptimize(lr.loss);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TrainingStep);

/// Per-step operator-new count of a warmed-up training step. Arg(0) pins
/// RP_ARENA=off (the "before" record), Arg(1) pins it on — the
/// memory-discipline acceptance number: with the arena engine the steady
/// state makes zero trips through operator new per step (tensors come from
/// the lane arena/pool, both malloc-backed and warm). Iterations are pinned
/// so the count is exact, threads at 1 so the census is single-lane.
void BM_TrainStepAllocs(benchmark::State& state) {
  parallel::set_num_threads(1);
  mem::force(state.range(0) == 1 ? mem::Mode::kOn : mem::Mode::kOff);
  data::SynthConfig cfg;
  cfg.n = 64;
  cfg.seed = 9;
  auto ds = data::make_synth_classification(cfg);
  auto net = nn::build_network("resnet8", nn::synth_cifar_task(), 1);
  std::vector<int64_t> idx(64);
  for (int64_t i = 0; i < 64; ++i) idx[static_cast<size_t>(i)] = i;
  data::Batch batch = data::make_batch(*ds, idx);
  const auto step = [&] {
    const mem::Scope scope;  // the per-batch reset boundary nn::train uses
    Tensor logits = net->forward(batch.images, true);
    const auto lr = nn::softmax_cross_entropy(logits, batch.labels);
    net->zero_grad();
    net->backward(lr.dlogits);
    benchmark::DoNotOptimize(lr.loss);
  };
  for (int i = 0; i < 3; ++i) step();  // warm the lane arena and pool
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) step();
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.counters["heap_allocs_per_step"] = benchmark::Counter(
      static_cast<double>(after - before) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(std::string("RP_ARENA=") + mem::mode_name(mem::mode()));
  mem::reset();
  parallel::set_num_threads(0);
}
BENCHMARK(BM_TrainStepAllocs)->Arg(0)->Arg(1)->Iterations(20);

/// Same census for a full evaluate() pass (batched forward + argmax + loss).
void BM_EvalAllocs(benchmark::State& state) {
  parallel::set_num_threads(1);
  mem::force(state.range(0) == 1 ? mem::Mode::kOn : mem::Mode::kOff);
  data::SynthConfig cfg;
  cfg.n = 128;
  cfg.seed = 13;
  auto ds = data::make_synth_classification(cfg);
  auto net = nn::build_network("resnet8", nn::synth_cifar_task(), 1);
  for (int i = 0; i < 2; ++i) nn::evaluate(*net, *ds);  // warm the lane pool
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    const auto metrics = nn::evaluate(*net, *ds);
    benchmark::DoNotOptimize(metrics.loss);
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.counters["heap_allocs_per_step"] = benchmark::Counter(
      static_cast<double>(after - before) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * 128);
  state.SetLabel(std::string("RP_ARENA=") + mem::mode_name(mem::mode()));
  mem::reset();
  parallel::set_num_threads(0);
}
BENCHMARK(BM_EvalAllocs)->Arg(0)->Arg(1)->Iterations(10);

void BM_BackselectStep(benchmark::State& state) {
  auto net = nn::build_network("resnet8", nn::synth_cifar_task(), 1);
  data::SynthConfig cfg;
  cfg.n = 1;
  cfg.seed = 10;
  Tensor img = data::make_synth_classification(cfg)->image(0);
  core::BackSelectConfig bs;
  bs.chunk = 128;  // two steps over 256 pixels
  for (auto _ : state) {
    auto order = core::backselect_order(*net, img, 0, bs);
    benchmark::DoNotOptimize(order.size());
  }
}
BENCHMARK(BM_BackselectStep)->Iterations(3);

}  // namespace

/// Shared micro-bench main (bench/common.hpp): median-of-5 repetitions,
/// aggregates-only reporting, JSON record in BENCH_micro_ops.json for
/// cross-PR trajectory tracking. Explicit command-line flags win.
int main(int argc, char** argv) {
  return rp::bench::run_micro_bench_main(argc, argv, "BENCH_micro_ops.json");
}
