// Ablation of DESIGN.md's "global vs local scope" and "data-informed
// sensitivity" choices: prune-accuracy curves of the paper's WT against
// (a) LayerWT — identical magnitudes ranked per layer instead of globally —
// and (b) Rand — value-independent random pruning, the sanity floor.
// Also sweeps SiPP's profiling-sample budget (the data-informed ablation).

#include "common.hpp"

#include "core/prune_retrain.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

using namespace rp;

int main(int argc, char** argv) {
  return bench::run_bench(argc, argv, [](exp::Runner& runner) {
    const auto task = nn::synth_cifar_task();
    const std::string arch = "resnet8";
    bench::print_banner("Ablation: pruning-scope and sensitivity choices", runner, {arch});
    const auto& s = runner.scale();

    // --- scope ablation: WT vs LayerWT vs Rand --------------------------------
    {
      std::vector<double> xs;
      std::vector<exp::Series> series;
      exp::Table table({"method", "acc @ checkpoints (increasing ratio)"});
      for (core::PruneMethod m :
           {core::PruneMethod::WT, core::PruneMethod::LayerWT, core::PruneMethod::Rand}) {
        const auto curve = runner.curve_cached(arch, task, m, 0, *runner.test_set(task));
        if (xs.empty()) {
          for (const auto& p : curve) xs.push_back(p.ratio);
        }
        std::vector<double> acc;
        std::string cells;
        for (const auto& p : curve) {
          acc.push_back(100.0 * (1.0 - p.error));
          cells += exp::fmt_pct(1.0 - p.error, 1) + " ";
        }
        series.push_back({core::to_string(m), std::move(acc)});
        table.add_row({core::to_string(m), cells});
      }
      exp::print_chart("Scope ablation [" + arch + "]: accuracy (%) vs prune ratio", "ratio",
                       xs, series);
      table.print();
    }

    // --- sensitivity ablation: SiPP profiling-sample budget --------------------
    {
      exp::Table table({"profile samples", "nominal potential", "gauss/3 potential"});
      auto gauss = bench::corrupted_test(runner, task, "gauss", s.severity);
      for (int64_t samples : {int64_t{8}, int64_t{32}, s.profile_samples}) {
        // Run a dedicated sweep with the reduced profiling budget (uncached —
        // small enough at fast scale).
        auto net = runner.trained(arch, task, 0);
        core::PruneRetrainConfig prc;
        prc.method = core::PruneMethod::SiPP;
        prc.keep_per_cycle = s.keep_per_cycle;
        prc.cycles = s.cycles;
        prc.retrain = runner.train_config(arch, 0);
        prc.retrain.epochs = s.retrain_epochs;
        for (int& ms : prc.retrain.schedule.milestones) {
          ms = ms * s.retrain_epochs / std::max(1, s.epochs);
        }
        prc.profile_samples = samples;

        std::vector<core::CurvePoint> nom_curve, gauss_curve;
        core::prune_retrain(*net, *runner.train_set(task), prc, [&](int, double ratio) {
          nom_curve.push_back({ratio, nn::evaluate(*net, *runner.test_set(task)).error()});
          gauss_curve.push_back({ratio, nn::evaluate(*net, *gauss).error()});
        });
        const double nom_base = runner.dense_error(arch, task, 0, *runner.test_set(task));
        const double gauss_base = runner.dense_error(arch, task, 0, *gauss);
        table.add_row({std::to_string(samples),
                       exp::fmt_pct(core::prune_potential(nom_curve, nom_base, bench::kDelta), 1),
                       exp::fmt_pct(core::prune_potential(gauss_curve, gauss_base, bench::kDelta),
                                    1)});
      }
      exp::print_header("Sensitivity ablation: SiPP potential vs profiling-sample budget");
      table.print();
    }

    std::printf("\nexpected: WT >= LayerWT >> Rand at high ratios (global ranking exploits\n"
                "cross-layer slack; random pruning collapses first); SiPP is robust to the\n"
                "profiling budget once a few dozen samples are used.\n");
  });
}
